"""The compact point-to-point RPC: same semantics, no composition."""

import pytest

from repro import LinkSpec, Status
from repro.apps import CounterApp, KVStore, ServerDispatcher
from repro.core.p2p import P2PMsg, PointToPointRPC
from repro.faults import drop_first
from repro.net import NetworkFabric, Node, UnreliableTransport
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import TypeDemux, compose_stack


def build_pair(*, link=None, seed=0, app_factory=KVStore,
               timebound=0.0):
    rt = SimRuntime()
    fabric = NetworkFabric(rt, rand=RandomSource(seed),
                           default_link=link or LinkSpec(delay=0.005,
                                                         jitter=0.0))
    sides = {}
    for pid in (1, 101):
        node = Node(pid, rt, fabric)
        p2p = PointToPointRPC(node, retrans_timeout=0.05,
                              timebound=timebound)
        demux = TypeDemux(f"demux@{pid}")
        compose_stack(demux, UnreliableTransport(node))
        demux.attach(P2PMsg, p2p)
        if pid == 1:
            dispatcher = ServerDispatcher(node, app_factory())
            compose_stack(dispatcher, p2p)
            sides["dispatcher"] = dispatcher
        node.start()
        sides[pid] = p2p
    return rt, fabric, sides


def run_call(rt, fabric, sides, op, args, extra=0.3):
    results = []

    async def client():
        results.append(await sides[101].call(op, args, 1))

    task = fabric.node(101).spawn(client())

    async def waiter():
        await rt.join(task)

    rt.run(waiter(), shutdown=False)
    rt.run_for(extra)
    return results[0]


def test_basic_roundtrip():
    rt, fabric, sides = build_pair()
    result = run_call(rt, fabric, sides, "put", {"key": "k", "value": 7})
    assert result.status is Status.OK
    result = run_call(rt, fabric, sides, "get", {"key": "k"})
    assert result.args == 7


def test_exactly_once_under_loss():
    rt, fabric, sides = build_pair(
        link=LinkSpec(delay=0.005, jitter=0.002, loss=0.25,
                      duplicate=0.1),
        seed=5, app_factory=CounterApp)
    for i in range(8):
        result = run_call(rt, fabric, sides, "inc",
                          {"amount": 1, "tag": i})
        assert result.status is Status.OK
    dispatcher = sides["dispatcher"]
    for tag in range(8):
        assert dispatcher.executions(tag) == 1
    assert dispatcher.app.value == 8


def test_reply_loss_replays_from_cache():
    rt, fabric, sides = build_pair(app_factory=CounterApp)
    fault = drop_first(fabric, 2,
                       lambda env: isinstance(env.payload, P2PMsg)
                       and env.payload.kind == "reply")
    result = run_call(rt, fabric, sides, "inc", {"amount": 1, "tag": "t"},
                      extra=0.5)
    assert result.status is Status.OK
    assert fault.dropped == 2
    assert sides["dispatcher"].executions("t") == 1


def test_reply_cache_drains_after_ack():
    rt, fabric, sides = build_pair()
    run_call(rt, fabric, sides, "put", {"key": "a", "value": 1},
             extra=0.5)
    assert sides[1]._old_results == {}


def test_bounded_termination():
    rt, fabric, sides = build_pair(timebound=0.5)
    fabric.partition([101], [1])
    result = run_call(rt, fabric, sides, "get", {"key": "k"}, extra=0.1)
    assert result.status is Status.TIMEOUT
    assert rt.now() >= 0.5


def test_client_crash_clears_pending_and_recovery_restarts_ids():
    rt, fabric, sides = build_pair()
    run_call(rt, fabric, sides, "put", {"key": "a", "value": 1})
    node = fabric.node(101)
    node.crash()
    node.recover()
    rt.run_for(0.1)
    # ids restart; the server keys by (client, incarnation, id) so the
    # recycled id is a fresh call.
    result = run_call(rt, fabric, sides, "put", {"key": "b", "value": 2})
    assert result.id == 1
    assert result.status is Status.OK


def test_concurrent_calls_multiplex():
    rt, fabric, sides = build_pair(
        link=LinkSpec(delay=0.01, jitter=0.02))
    results = {}

    async def one(i):
        results[i] = await sides[101].call("put",
                                           {"key": f"k{i}", "value": i}, 1)

    async def scenario():
        tasks = [fabric.node(101).spawn(one(i)) for i in range(6)]
        for t in tasks:
            await rt.join(t)

    rt.run(scenario(), shutdown=False)
    rt.run_for(0.5)
    assert all(results[i].status is Status.OK for i in range(6))
    assert sorted(r.id for r in results.values()) == list(range(1, 7))
