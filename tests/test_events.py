"""Unit tests for the event framework (register/trigger/cancel/TIMEOUT)."""

import pytest

from repro.core.events import LOWEST_PRIORITY, TIMEOUT, EventBus
from repro.errors import KernelError
from repro.runtime import SimRuntime


def make_bus():
    rt = SimRuntime()
    return rt, EventBus(rt)


def test_trigger_runs_handlers_in_priority_order():
    rt, bus = make_bus()
    order = []

    async def h1(x):
        order.append(("h1", x))

    async def h2(x):
        order.append(("h2", x))

    async def h3(x):
        order.append(("h3", x))

    bus.register("E", h3)          # default: lowest, runs last
    bus.register("E", h1, 1)
    bus.register("E", h2, 2)

    async def main():
        completed = await bus.trigger("E", 42)
        assert completed

    rt.run(main())
    assert order == [("h1", 42), ("h2", 42), ("h3", 42)]


def test_equal_priority_runs_in_registration_order():
    rt, bus = make_bus()
    order = []

    async def a():
        order.append("a")

    async def b():
        order.append("b")

    bus.register("E", a, 2)
    bus.register("E", b, 2)

    rt.run(bus.trigger("E"))
    assert order == ["a", "b"]


def test_trigger_with_no_handlers_is_noop():
    rt, bus = make_bus()

    async def main():
        assert await bus.trigger("GHOST") is True

    rt.run(main())


def test_cancel_event_skips_remaining_handlers():
    rt, bus = make_bus()
    order = []

    async def first():
        order.append("first")
        bus.cancel_event()

    async def second():
        order.append("second")

    bus.register("E", first, 1)
    bus.register("E", second, 2)

    async def main():
        completed = await bus.trigger("E")
        assert not completed

    rt.run(main())
    assert order == ["first"]


def test_cancel_event_outside_dispatch_raises():
    rt, bus = make_bus()

    async def main():
        with pytest.raises(KernelError):
            bus.cancel_event()

    rt.run(main())


def test_nested_trigger_cancellation_is_scoped():
    rt, bus = make_bus()
    order = []

    async def inner_handler():
        order.append("inner")
        bus.cancel_event()  # cancels only the inner dispatch

    async def outer_first():
        order.append("outer-first")
        completed = await bus.trigger("INNER")
        assert not completed

    async def outer_second():
        order.append("outer-second")

    bus.register("INNER", inner_handler)
    bus.register("OUTER", outer_first, 1)
    bus.register("OUTER", outer_second, 2)

    async def main():
        assert await bus.trigger("OUTER") is True

    rt.run(main())
    assert order == ["outer-first", "inner", "outer-second"]


def test_concurrent_dispatches_do_not_cross_cancel():
    from repro.sim import sleep, spawn

    rt, bus = make_bus()
    order = []

    async def slow_handler(tag):
        order.append(f"start-{tag}")
        await rt.sleep(1.0)
        if tag == "a":
            bus.cancel_event()
        order.append(f"end-{tag}")

    async def follower(tag):
        order.append(f"follower-{tag}")

    bus.register("E", slow_handler, 1)
    bus.register("E", follower, 2)

    async def main():
        t1 = await spawn(bus.trigger("E", "a"))
        t2 = await spawn(bus.trigger("E", "b"))
        assert await t1.join() is False   # "a" cancelled its own chain
        assert await t2.join() is True    # "b" unaffected

    rt.run(main())
    assert "follower-b" in order and "follower-a" not in order


def test_deregister_removes_handler():
    rt, bus = make_bus()
    calls = []

    async def h():
        calls.append(1)

    bus.register("E", h)
    rt.run(bus.trigger("E"))
    assert bus.deregister("E", h) is True
    assert bus.deregister("E", h) is False
    rt.run(bus.trigger("E"))
    assert calls == [1]


def test_registration_during_dispatch_takes_effect_next_time():
    rt, bus = make_bus()
    calls = []

    async def late():
        calls.append("late")

    async def installer():
        calls.append("installer")
        bus.register("E", late, 5)

    bus.register("E", installer, 1)

    async def main():
        await bus.trigger("E")
        assert calls == ["installer"]   # snapshot: late not run this time
        await bus.trigger("E")

    rt.run(main())
    assert calls == ["installer", "installer", "late"]


def test_timeout_is_one_shot():
    rt, bus = make_bus()
    fired = []

    async def on_timeout():
        fired.append(rt.now())

    bus.register(TIMEOUT, on_timeout, 2.0)
    assert bus.pending_timeouts() == 1
    rt.kernel.run_until(10.0)
    assert fired == [2.0]
    assert bus.pending_timeouts() == 0


def test_timeout_requires_interval():
    rt, bus = make_bus()

    async def on_timeout():
        pass

    with pytest.raises(KernelError):
        bus.register(TIMEOUT, on_timeout)


def test_timeout_rearm_gives_periodic_behavior():
    rt, bus = make_bus()
    fired = []

    async def on_timeout():
        fired.append(rt.now())
        if len(fired) < 3:
            bus.register(TIMEOUT, on_timeout, 1.0)

    bus.register(TIMEOUT, on_timeout, 1.0)
    rt.kernel.run_until(10.0)
    assert fired == [1.0, 2.0, 3.0]


def test_timeout_deregister_cancels_pending():
    rt, bus = make_bus()
    fired = []

    async def on_timeout():
        fired.append(1)

    bus.register(TIMEOUT, on_timeout, 1.0)
    assert bus.deregister(TIMEOUT, on_timeout) is True
    rt.kernel.run_until(5.0)
    assert fired == []


def test_independent_timeouts_fire_independently():
    rt, bus = make_bus()
    fired = []

    async def t1():
        fired.append(("t1", rt.now()))

    async def t2():
        fired.append(("t2", rt.now()))

    bus.register(TIMEOUT, t1, 3.0)
    bus.register(TIMEOUT, t2, 1.0)
    rt.kernel.run_until(5.0)
    assert fired == [("t2", 1.0), ("t1", 3.0)]


def test_cancel_pending_timeouts():
    rt, bus = make_bus()
    fired = []

    async def on_timeout():
        fired.append(1)

    bus.register(TIMEOUT, on_timeout, 1.0)
    bus.register(TIMEOUT, on_timeout, 2.0)
    bus.cancel_pending_timeouts()
    rt.kernel.run_until(5.0)
    assert fired == []
    assert bus.pending_timeouts() == 0


def test_registration_table_lists_handler_names():
    rt, bus = make_bus()

    async def alpha():
        pass

    async def beta():
        pass

    bus.register("E", beta, 2)
    bus.register("E", alpha, 1)
    table = bus.registration_table()
    names = table["E"]
    assert names[0].endswith("alpha")
    assert names[1].endswith("beta")


def test_default_priority_is_lowest():
    rt, bus = make_bus()

    async def h():
        pass

    reg = bus.register("E", h)
    assert reg.priority == LOWEST_PRIORITY
