"""Membership RECOVERY events and pending calls (the paper's fine print).

The paper's Acceptance handler reacts only to FAILURE changes.  A member
*recovering* mid-call must not be added to a pending call's quota (its
requirement set was fixed at issue time), but it must count again for
calls issued afterwards.  These tests pin that boundary down.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import KVStore
from repro.core.microprotocols import ALL

FAST = LinkSpec(delay=0.005, jitter=0.0)


def make_cluster():
    spec = ServiceSpec(acceptance=ALL, bounded=0.0,
                       retrans_timeout=0.05)
    return ServiceCluster(spec, KVStore, n_servers=3,
                          default_link=FAST, membership="oracle")


def test_recovery_mid_call_does_not_raise_the_pending_quota():
    cluster = make_cluster()
    cluster.crash(3)          # call issued while 3 is down
    outcome = {}

    async def scenario():
        task = cluster.spawn_client(
            cluster.client, _call(cluster, outcome))
        # Recover the dead member while the call is in flight; the call
        # was scoped to the two live members and must complete with them
        # (not start waiting on the rejoiner too).
        await cluster.runtime.sleep(0.003)
        cluster.recover(3)
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=0.5)
    assert outcome["result"].ok
    # Completed at roughly one fast round trip.
    assert outcome["at"] < 0.1


def test_recovered_member_required_by_subsequent_calls():
    cluster = make_cluster()
    cluster.crash(3)
    assert cluster.call_and_run("put", {"key": "a", "value": 1},
                                extra_time=0.2).ok
    cluster.recover(3)
    cluster.settle(0.1)
    assert cluster.call_and_run("put", {"key": "b", "value": 2},
                                extra_time=0.5).ok
    # The rejoiner executed the new call: it was back in the quota.
    assert cluster.app(3).data == {"b": 2}


def test_failure_then_recovery_of_same_member_mid_call_is_stable():
    cluster = make_cluster()
    cluster.make_slow(3, 1.0)   # member 3 will be the laggard
    outcome = {}

    async def scenario():
        task = cluster.spawn_client(
            cluster.client, _call(cluster, outcome))
        await cluster.runtime.sleep(0.05)
        cluster.crash(3)        # marks 3 done on the pending call
        await cluster.runtime.sleep(0.05)
        cluster.recover(3)      # must NOT resurrect the requirement
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=1.5)
    assert outcome["result"].ok
    assert outcome["at"] < 0.5   # did not wait out the 1s laggard link


def _call(cluster, outcome):
    async def inner():
        outcome["result"] = await cluster.call(
            cluster.client, "put", {"key": "k", "value": 1})
        outcome["at"] = cluster.runtime.now()
    return inner()
