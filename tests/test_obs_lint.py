"""The obs-registration lint and the protocol catalog it enforces."""

import pytest

from repro.analysis import (
    METRIC_NAMESPACES,
    check_metric_names,
    check_obs_registration,
    known_metric_prefixes,
)
from repro.analysis.obslint import microprotocols_dir
from repro.obs import is_registered, register_protocol, registered_protocols


def test_every_microprotocol_module_registers(tmp_path):
    result = check_obs_registration()
    result.raise_if_failed()
    assert result.ok


def test_lint_flags_an_unregistered_module(tmp_path):
    (tmp_path / "rogue.py").write_text(
        "class Rogue:\n"
        "    protocol_name = 'Rogue'\n")
    result = check_obs_registration(tmp_path)
    assert not result.ok
    assert "rogue.py" in result.violations[0]


def test_lint_accepts_a_registered_module(tmp_path):
    (tmp_path / "good.py").write_text(
        "from repro.obs import register_protocol\n"
        "class Good:\n"
        "    protocol_name = 'Good'\n"
        "register_protocol(Good.protocol_name)\n")
    result = check_obs_registration(tmp_path)
    assert result.ok


def test_lint_ignores_protocol_free_modules(tmp_path):
    (tmp_path / "helpers.py").write_text("x = 1\n")
    result = check_obs_registration(tmp_path)
    assert not result.ok  # no protocols at all is itself a violation
    assert "no micro-protocol modules" in result.violations[0]


def test_catalog_covers_the_full_composition_space():
    # Importing the package registered every shipped micro-protocol.
    import repro.core.microprotocols  # noqa: F401
    names = registered_protocols()
    assert {"RPC_Main", "Synchronous_Call", "Asynchronous_Call",
            "Reliable_Communication", "Bounded_Termination",
            "Unique_Execution", "Serial_Execution", "Atomic_Execution",
            "Terminate_Orphan", "Probe_Orphan_Termination",
            "FIFO_Order", "Total_Order", "Causal_Order",
            "Acceptance", "Collation", "Interference_Avoidance",
            "Call_Observer"} <= names
    assert is_registered("RPC_Main")
    assert not is_registered("Not_A_Protocol")


def test_registration_is_idempotent_and_validates():
    import repro.core.microprotocols  # noqa: F401
    before = len(registered_protocols())
    assert register_protocol("RPC_Main") == "RPC_Main"  # re-register ok
    assert len(registered_protocols()) == before
    with pytest.raises(ValueError):
        register_protocol("")


def test_lint_targets_the_installed_package():
    assert (microprotocols_dir() / "rpc_main.py").exists()


# ----------------------------------------------------------------------
# The metric-name catalog
# ----------------------------------------------------------------------

def test_metric_catalog_includes_the_wire_pipeline_namespaces():
    for prefix in ("net.batch.", "net.queue.", "net.fastlane.",
                   "net.link.", "net.", "handler.", "kernel.",
                   "service.", "placement."):
        assert prefix in METRIC_NAMESPACES
    # Longest-first so the specific wire namespaces win over "net.".
    prefixes = known_metric_prefixes()
    assert prefixes.index("net.batch.") < prefixes.index("net.")


def test_metric_catalog_includes_the_observatory_namespaces():
    for prefix in ("placement.load.", "obs.profile.", "obs.slo.",
                   "obs.recorder.", "obs."):
        assert prefix in METRIC_NAMESPACES
    prefixes = known_metric_prefixes()
    assert prefixes.index("placement.load.") < prefixes.index("placement.")
    assert prefixes.index("obs.slo.") < prefixes.index("obs.")
    ok = check_metric_names(
        ["placement.load.noted", "placement.load.volume.shard-0",
         "obs.profile.steps", "obs.slo.p99.kv", "obs.recorder.notes"])
    assert ok.ok


def test_check_metric_names_accepts_and_flags():
    ok = check_metric_names(["net.batch.envelopes", "net.queue.waits",
                             "net.fastlane.sends", "net.send",
                             "service.kv.calls", "handler.RPC_Main"])
    assert ok.ok
    bad = check_metric_names(["wire.batch.envelopes", "net."])
    assert not bad.ok
    assert len(bad.violations) == 2


def test_live_deployment_instruments_stay_inside_the_catalog():
    from repro import LinkSpec, ServiceCluster, ServiceSpec, WireConfig
    from repro.apps import KVStore

    cluster = ServiceCluster(
        ServiceSpec(bounded=5.0, unique=True), KVStore, n_servers=3,
        default_link=LinkSpec(delay=0.005, jitter=0.0),
        membership="heartbeat",
        wire=WireConfig(batch=True, queue_depth=8, link_metrics=True))
    cluster.call_and_run("put", {"key": "k", "value": 1}, extra_time=0.3)
    cluster.deployment.publish_runtime_stats()
    snap = cluster.metrics.snapshot()
    names = (list(snap["counters"]) + list(snap["gauges"])
             + list(snap["histograms"]))
    assert names  # something was actually instrumented
    check_metric_names(names).raise_if_failed()


def test_observatory_instruments_stay_inside_the_catalog():
    from repro import Deployment, ServiceSpec
    from repro.apps import KVStore

    deployment = Deployment(membership="oracle", observatory=True)
    deployment.add_service("kv", ServiceSpec(), KVStore, servers=2)
    deployment.call_and_run("kv", "put", {"key": "k", "value": 1})
    deployment.publish_runtime_stats()
    snap = deployment.metrics.snapshot()
    names = [name for kind in snap.values() for name in kind]
    # The observatory actually landed instruments in its namespaces...
    assert any(name.startswith("obs.profile.") for name in names)
    assert any(name.startswith("obs.slo.") for name in names)
    assert any(name.startswith("obs.recorder.") for name in names)
    # ...and every one of them is inside the documented catalog.
    check_metric_names(names).raise_if_failed()
    deployment.shutdown()
