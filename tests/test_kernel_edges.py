"""Edge cases of the simulation kernel and event bus."""

import pytest

from repro.core.events import TIMEOUT, EventBus
from repro.errors import KernelError, TaskCancelled
from repro.runtime import SimRuntime
from repro.sim import (
    Event,
    Kernel,
    Lock,
    Semaphore,
    checkpoint_yield,
    sleep,
    spawn,
)


# ----------------------------------------------------------------------
# Kernel
# ----------------------------------------------------------------------

def test_cancel_task_queued_in_ready_state():
    kernel = Kernel()
    ran = []

    async def victim():
        ran.append("ran")

    async def main():
        task = await spawn(victim())   # queued, not yet started
        task.cancel()
        await sleep(0)

    kernel.run(main())
    assert ran == []


def test_join_already_cancelled_task_raises():
    kernel = Kernel()

    async def victim():
        await sleep(100)

    async def main():
        task = await spawn(victim())
        await sleep(1)
        task.cancel()
        await sleep(0)
        with pytest.raises(TaskCancelled):
            await task.join()

    kernel.run(main())


def test_joiner_woken_when_target_cancelled():
    kernel = Kernel()
    outcome = []

    async def victim():
        await sleep(100)

    async def joiner(task):
        try:
            await task.join()
        except TaskCancelled:
            outcome.append("cancelled")

    async def main():
        task = await spawn(victim())
        await spawn(joiner(task))
        await sleep(1)
        task.cancel()
        await sleep(1)

    kernel.run(main())
    assert outcome == ["cancelled"]


def test_task_exception_propagates_to_joiner_not_failures():
    kernel = Kernel()

    async def bad():
        raise ValueError("expected")

    async def main():
        task = await spawn(bad())
        with pytest.raises(ValueError):
            await task.join()

    kernel.run(main())
    assert kernel.failures == []


def test_daemon_failure_is_not_strict_fatal():
    kernel = Kernel()

    async def bad_daemon():
        raise RuntimeError("daemon oops")

    async def main():
        await spawn(bad_daemon(), daemon=True)
        await sleep(1)

    kernel.run(main())   # strict=True must not raise for daemons


def test_cancelling_cancelled_task_is_noop():
    kernel = Kernel()

    async def victim():
        await sleep(100)

    async def main():
        task = await spawn(victim())
        await sleep(1)
        assert task.cancel() is True
        await sleep(0)
        assert task.cancel() is False

    kernel.run(main())


def test_task_catches_cancellation_for_cleanup():
    kernel = Kernel()
    cleaned = []

    async def careful():
        try:
            await sleep(100)
        except TaskCancelled:
            cleaned.append("cleanup")
            raise

    async def main():
        task = await spawn(careful())
        await sleep(1)
        task.cancel()
        await sleep(0)

    kernel.run(main())
    assert cleaned == ["cleanup"]


def test_negative_call_later_rejected():
    with pytest.raises(KernelError):
        Kernel().call_later(-1.0, lambda: None)


def test_call_at_absolute_time():
    kernel = Kernel()
    fired = []
    kernel.run_until(5.0)
    kernel.call_at(7.5, lambda: fired.append(kernel.now))
    kernel.call_at(1.0, lambda: fired.append(kernel.now))  # in the past
    kernel.run_until_idle()
    assert fired == [pytest.approx(5.0), pytest.approx(7.5)]


def test_live_tasks_listing():
    kernel = Kernel()

    async def sleeper():
        await sleep(10)

    async def main():
        await spawn(sleeper(), name="zzz")
        live = [t.name for t in kernel.live_tasks()]
        assert "zzz" in live and "main" in live

    kernel.run(main())


def test_timer_during_run_for_boundary():
    kernel = Kernel()
    fired = []
    kernel.call_later(1.0, lambda: fired.append("exact"))
    kernel.run_for(1.0)   # boundary inclusive
    assert fired == ["exact"]


# ----------------------------------------------------------------------
# Sync edge cases
# ----------------------------------------------------------------------

def test_event_set_idempotent_and_no_kernel_needed_when_empty():
    kernel = Kernel()

    async def main():
        event = Event()
        event.set()
        event.set()     # second set: no waiters, no error
        await event.wait()

    kernel.run(main())


def test_lock_contention_queue_order_survives_cancellation():
    kernel = Kernel()
    lock = Lock()
    order = []

    async def contender(tag):
        async with lock:
            order.append(tag)
            await sleep(1)

    async def main():
        await lock.acquire()
        tasks = [await spawn(contender(i)) for i in range(3)]
        await sleep(1)
        tasks[1].cancel()        # middle waiter leaves the queue
        await sleep(0)
        lock.release()
        for i in (0, 2):
            await tasks[i].join()

    kernel.run(main())
    assert order == [0, 2]


def test_semaphore_acquire_order_with_mixed_free_and_blocked():
    kernel = Kernel()
    sem = Semaphore(1)
    order = []

    async def worker(tag):
        await sem.acquire()
        order.append(tag)

    async def main():
        for i in range(3):
            await spawn(worker(i))
        await sleep(1)
        sem.release()
        sem.release()
        await sleep(1)

    kernel.run(main())
    assert order == [0, 1, 2]


# ----------------------------------------------------------------------
# Event bus edges
# ----------------------------------------------------------------------

def test_deregister_pending_handler_during_dispatch():
    rt = SimRuntime()
    bus = EventBus(rt)
    ran = []

    async def second():
        ran.append("second")

    async def first():
        ran.append("first")
        # Deregistering mid-dispatch does not affect the running snapshot.
        bus.deregister("E", second)

    bus.register("E", first, 1)
    bus.register("E", second, 2)
    rt.run(bus.trigger("E"))
    assert ran == ["first", "second"]
    ran.clear()
    rt.run(bus.trigger("E"))
    assert ran == ["first"]


def test_timeout_handler_can_cancel_its_own_dispatch():
    rt = SimRuntime()
    bus = EventBus(rt)
    ran = []

    async def on_timeout():
        ran.append(rt.now())
        bus.cancel_event()   # legal inside a TIMEOUT dispatch

    bus.register(TIMEOUT, on_timeout, 1.0)
    rt.kernel.run_until(2.0)
    assert ran == [1.0]


def test_in_dispatch_reports_event_name():
    rt = SimRuntime()
    bus = EventBus(rt)
    seen = []

    async def handler():
        seen.append(bus.in_dispatch())

    bus.register("MY_EVENT", handler)

    async def main():
        assert bus.in_dispatch() is None
        await bus.trigger("MY_EVENT")

    rt.run(main())
    assert seen == ["MY_EVENT"]


def test_handler_exception_propagates_to_trigger_caller():
    rt = SimRuntime()
    bus = EventBus(rt)

    async def bad():
        raise RuntimeError("handler blew up")

    async def after():
        pass  # pragma: no cover - must not run

    bus.register("E", bad, 1)
    bus.register("E", after, 2)

    async def main():
        with pytest.raises(RuntimeError, match="handler blew up"):
            await bus.trigger("E")
        # The dispatch stack unwound cleanly; the bus remains usable.
        assert bus.in_dispatch() is None

    rt.run(main())
