"""Zero-overhead-when-disabled guard for the observability layer.

The obs contract: instrumented components resolve the recorder ONCE (at
attach/construction time) and a disabled deployment pays a single
``is None`` test per dispatch.  This module guards that contract two
ways:

* structurally — a disabled recorder is never installed, nothing records;
* empirically — the event-dispatch hot loop with tracing disabled stays
  within 5% of a baseline running the pre-instrumentation trigger loop
  (the exact code minus the ``_obs`` check), using interleaved min-of-k
  timing so scheduler noise cancels.
"""

import time

import pytest

from repro.core.events import EventBus, _Dispatch
from repro.obs import Recorder
from repro.runtime import SimRuntime

TRIGGERS = 2000
SAMPLES = 5
ATTEMPTS = 3
THRESHOLD = 1.05


async def _raw_trigger(self, event, *args):
    """The pre-instrumentation trigger loop: EventBus.trigger exactly as
    it stood before the obs layer, without the ``_obs`` check."""
    snapshot = list(self._handlers.get(event, []))
    if not snapshot:
        return True
    dispatch = _Dispatch(event)
    task_key = id(self.runtime.current_handle_nowait())
    stack = self._active.setdefault(task_key, [])
    stack.append(dispatch)
    try:
        for reg in snapshot:
            if dispatch.cancelled:
                break
            await reg.handler(*args)
    finally:
        self._pop_dispatch(task_key, stack, dispatch)
    return not dispatch.cancelled


def _dispatch_loop_seconds(*, raw: bool) -> float:
    """Wall-clock for TRIGGERS sequential dispatches of 3 handlers."""
    runtime = SimRuntime()
    runtime.attach_obs(Recorder(enabled=False))  # the disabled path
    bus = EventBus(runtime)
    hits = []

    async def handler(arg):
        hits.append(arg)

    for prio in (1, 2, 3):
        bus.register("EVT", handler, prio, owner=f"micro-{prio}")

    trigger = _raw_trigger.__get__(bus) if raw else bus.trigger

    async def loop():
        for i in range(TRIGGERS):
            await trigger("EVT", i)

    start = time.perf_counter()
    runtime.run(loop())
    elapsed = time.perf_counter() - start
    assert len(hits) == 3 * TRIGGERS  # both variants did the same work
    return elapsed


def test_disabled_recorder_is_never_installed():
    runtime = SimRuntime()
    spy = Recorder(enabled=False)
    runtime.attach_obs(spy)
    assert runtime.obs is None
    bus = EventBus(runtime)
    assert bus._obs is None  # dispatch stays on the untraced branch

    async def noop():
        pass

    bus.register("EVT", noop, 1, owner="micro")
    runtime.run(bus.trigger("EVT"))
    assert spy.spans == [] and spy.events == []
    assert spy.metrics.snapshot()["histograms"] == {}


def test_enabled_recorder_is_installed():
    runtime = SimRuntime()
    rec = Recorder()
    runtime.attach_obs(rec)
    assert runtime.obs is rec
    assert EventBus(runtime)._obs is rec


def test_observatory_hooks_absent_by_default():
    """Every observatory seam holds None unless observatory=True.

    The profiler, the SLO tracker, the flight recorder and the load
    tracker each ride an attach-once hook; a default deployment must
    leave all of them unresolved so the hot paths stay on their single
    ``is None`` test (kernel step, event dispatch, wire send, route,
    call return, marshal).
    """
    import importlib

    from repro import Deployment

    deployment = Deployment()
    assert deployment.observatory is None
    assert deployment.flight is None       # rebinds go untaped
    assert deployment._slo is None         # call latencies unobserved
    assert deployment.runtime.profiler is None
    assert deployment.runtime.kernel.profile_hook is None
    assert deployment.fabric.pipeline.flight is None
    marshal = importlib.import_module("repro.stubs.marshal")
    assert marshal._PROFILER is None
    bus = EventBus(deployment.runtime)
    assert bus._obs is None and bus._prof is None
    deployment.shutdown()


def test_disabled_marshal_loop_does_not_profile():
    """The marshaller's module-global hook: nothing recorded, and the
    disabled loop costs a single global read per call."""
    import importlib

    marshal = importlib.import_module("repro.stubs.marshal")
    assert marshal._PROFILER is None
    payload = {"key": "k", "value": list(range(8))}
    for _ in range(100):
        marshal.unmarshal(marshal.marshal(payload))
    assert marshal._PROFILER is None       # round-trips installed nothing


def test_disabled_dispatch_overhead_under_5_percent():
    # Interleaved min-of-k: the minimum over several alternating samples
    # discards scheduler interference; retry the whole comparison a
    # couple of times before declaring a real regression.
    for attempt in range(ATTEMPTS):
        baseline, guarded = [], []
        for _ in range(SAMPLES):
            baseline.append(_dispatch_loop_seconds(raw=True))
            guarded.append(_dispatch_loop_seconds(raw=False))
        ratio = min(guarded) / min(baseline)
        if ratio < THRESHOLD:
            break
    assert ratio < THRESHOLD, (
        f"disabled-tracing dispatch is {ratio:.3f}x the raw baseline "
        f"(limit {THRESHOLD}); the disabled hot path must stay a single "
        f"is-None check")
