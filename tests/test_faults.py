"""Unit tests for the fault-injection utilities."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, WireConfig
from repro.apps import KVStore
from repro.faults import (
    CrashSchedule,
    all_acks,
    all_replies,
    calls_to,
    drop_first,
    drop_matching,
    net_msg,
    order_messages,
    replies_from,
)

FAST = LinkSpec(delay=0.005, jitter=0.0)


def make_cluster(**kwargs):
    spec = kwargs.pop("spec", ServiceSpec(bounded=5.0, unique=True))
    return ServiceCluster(spec, KVStore, n_servers=2,
                          default_link=FAST, **kwargs)


def test_drop_matching_counts_and_removes():
    cluster = make_cluster()
    fault = drop_matching(cluster.fabric, calls_to(1))
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.3)
    assert result.ok                       # server 2 answered
    assert fault.matched > 0
    assert fault.dropped == fault.matched  # unlimited drop
    fault.remove()
    before = fault.dropped
    cluster.call_and_run("get", {"key": "k"}, extra_time=0.3)
    assert fault.dropped == before         # no longer active


def test_drop_first_limits_drops():
    # acceptance=2 so the call cannot complete without server 1,
    # forcing retransmissions through the limited drop filter.
    cluster = make_cluster(spec=ServiceSpec(bounded=5.0, unique=True,
                                            acceptance=2))
    fault = drop_first(cluster.fabric, 2, calls_to(1))
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.5)
    assert result.ok
    assert fault.dropped == 2
    assert fault.matched >= 3   # retransmissions got through eventually


def test_predicates_select_correct_messages():
    cluster = make_cluster()
    seen = {"replies": 0, "acks": 0, "orders": 0}
    rf = replies_from(1)
    ar = all_replies()
    aa = all_acks()
    om = order_messages()

    def spy(env):
        if ar(env):
            seen["replies"] += 1
            assert rf(env) == (env.src == 1)
        if aa(env):
            seen["acks"] += 1
        if om(env):
            seen["orders"] += 1
        return True

    cluster.fabric.add_filter(spy)
    cluster.call_and_run("put", {"key": "k", "value": 1}, extra_time=0.5)
    assert seen["replies"] == 2   # both servers replied
    assert seen["acks"] == 2      # client ACKed both (unique execution)
    assert seen["orders"] == 0    # no total order configured


def test_net_msg_unwraps_only_grpc_payloads():
    from repro.net.message import Envelope

    env = Envelope(1, 2, "not-a-netmsg", 0.0)
    assert net_msg(env) is None


def test_crash_schedule_bounce():
    cluster = make_cluster()
    schedule = CrashSchedule(cluster.runtime,
                             [cluster.node(pid)
                              for pid in cluster.server_pids])
    schedule.bounce(1, down_at=0.5, up_at=1.5)
    cluster.settle(1.0)
    assert not cluster.node(1).up
    assert cluster.node(2).up
    cluster.settle(1.0)
    assert cluster.node(1).up
    assert cluster.node(1).incarnation == 2


def test_crash_schedule_relative_to_now():
    cluster = make_cluster()
    cluster.settle(2.0)   # now = 2.0
    schedule = CrashSchedule(cluster.runtime, [cluster.node(1)])
    schedule.crash_at(2.5, 1)
    cluster.settle(0.4)
    assert cluster.node(1).up
    cluster.settle(0.2)
    assert not cluster.node(1).up


# ----------------------------------------------------------------------
# Fault injection under wire-pipeline batching
# ----------------------------------------------------------------------

def _batching_pair():
    """Two raw fabric nodes with link-level coalescing enabled."""
    from repro.net import NetworkFabric, Node, UnreliableTransport
    from repro.runtime import SimRuntime
    from repro.xkernel import Protocol, compose_stack

    class Collector(Protocol):
        def __init__(self, name):
            super().__init__(name)
            self.received = []

        async def pop(self, payload, sender):
            self.received.append(payload)

    rt = SimRuntime()
    fabric = NetworkFabric(rt, default_link=FAST,
                           wire=WireConfig(batch=True))
    nodes, tops = {}, {}
    for pid in (1, 2):
        node = Node(pid, rt, fabric)
        top = Collector(f"top@{pid}")
        compose_stack(top, UnreliableTransport(node))
        node.start()
        nodes[pid], tops[pid] = node, top
    return rt, fabric, nodes, tops


def test_losing_a_batched_envelope_counts_one_loss_per_inner_message():
    from repro.net import LinkSpec as LS

    rt, fabric, nodes, tops = _batching_pair()
    fabric.set_link(1, 2, LS(delay=0.02, jitter=0.0, loss=1.0))

    async def main():
        for i in range(5):
            await nodes[1].transport.push(2, f"m{i}")
        await rt.sleep(0.5)

    rt.run(main())
    # One coalesced envelope went down the link and was dropped, but the
    # net.* accounting is per message: five sends, five losses.
    assert tops[2].received == []
    assert fabric.trace.sends == 5
    assert fabric.trace.losses == 5
    assert fabric.trace.metrics.value("net.envelopes") == 1
    assert fabric.trace.metrics.value("net.batch.envelopes") == 1


def test_drop_filters_probe_each_inner_message_of_a_batch():
    rt, fabric, nodes, tops = _batching_pair()
    fault = drop_matching(fabric,
                          lambda env: env.payload == "victim")

    async def main():
        for payload in ("a", "victim", "b", "victim", "c"):
            await nodes[1].transport.push(2, payload)
        await rt.sleep(0.5)

    rt.run(main())
    # The filter saw every inner message individually; the survivors
    # continued in a rebuilt batch.
    assert fault.matched == 2 and fault.dropped == 2
    assert tops[2].received == ["a", "b", "c"]
    assert fabric.trace.counts["drop-filter"] == 2
    assert fabric.trace.deliveries == 3
    assert fabric.trace.metrics.value("net.envelopes") == 1


def test_retransmission_converges_over_lossy_links_with_batching():
    # The Reliable Communication micro-protocol must still converge when
    # its (re)transmissions ride in coalesced envelopes over a link that
    # drops whole batches.
    spec = ServiceSpec(bounded=8.0, unique=True, acceptance=2,
                       retrans_timeout=0.05)
    cluster = ServiceCluster(
        spec, KVStore, n_servers=2, seed=9,
        default_link=LinkSpec(delay=0.005, jitter=0.002, loss=0.25),
        wire=WireConfig(batch=True, queue_depth=16))
    for i in range(3):
        result = cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                      extra_time=0.5)
        assert result.ok
    for pid in cluster.server_pids:
        for i in range(3):
            assert cluster.app(pid).data[f"k{i}"] == i
    # Losses happened (the link is genuinely bad) and every dropped
    # batch accounted at least one loss.
    assert cluster.trace.losses > 0
