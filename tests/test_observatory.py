"""The deployment observatory: instruments and their assembly.

Unit coverage for each instrument — the bounded histogram reservoir, the
space-saving hot-key sketch, the rolling SLO windows with breach
latching, the flight recorder's ring semantics and deterministic dumps,
the profiler's self/cumulative attribution — plus end-to-end checks
that an ``observatory=True`` deployment wires them all together and
renders the one-page health report.
"""

import importlib
import random

import pytest

from repro import Deployment, ServiceSpec
from repro.apps import KVStore, ShardRouter
from repro.obs.flight import FlightRecorder, live_recorders
from repro.obs.loadstats import KeyLoadTracker, SpaceSaving
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.profiler import KernelProfiler
from repro.obs.slo import SloTracker


def _marshal():
    return importlib.import_module("repro.stubs.marshal")


# ---------------------------------------------------------------------------
# Histogram reservoir (bounded memory, deterministic summaries)
# ---------------------------------------------------------------------------

def test_reservoir_exact_below_cap():
    hist = Histogram("t", reservoir=64)
    values = [i / 10 for i in range(50)]
    for v in values:
        hist.observe(v)
    assert hist.samples == values          # every observation retained
    assert hist.count == 50
    assert hist.summary()["max"] == pytest.approx(4.9)


def test_reservoir_bounds_memory_with_exact_aggregates():
    hist = Histogram("t", reservoir=32)
    rng = random.Random(7)
    values = [rng.random() for _ in range(5000)]
    for v in values:
        hist.observe(v)
    assert len(hist.samples) == 32         # bounded however long the run
    assert hist.count == 5000              # aggregates stay exact
    assert hist.total == pytest.approx(sum(values))
    assert hist.summary()["min"] == pytest.approx(min(values))
    assert hist.summary()["max"] == pytest.approx(max(values))


def test_reservoir_is_deterministic_per_name():
    def run(name):
        hist = Histogram(name, reservoir=16)
        rng = random.Random(3)
        for _ in range(1000):
            hist.observe(rng.random())
        return hist.samples

    assert run("same") == run("same")      # seeded from the name
    # Seeded benchmarks stay byte-identical across runs of one tree.


# ---------------------------------------------------------------------------
# Space-saving hot keys under a Zipfian stream
# ---------------------------------------------------------------------------

def test_space_saving_finds_zipf_head():
    keys = [f"key-{i:03d}" for i in range(100)]
    weights = [1.0 / (rank + 1) for rank in range(100)]
    rng = random.Random(42)
    truth = {}
    sketch = SpaceSaving(budget=8)
    for _ in range(4000):
        key = rng.choices(keys, weights)[0]
        truth[key] = truth.get(key, 0) + 1
        sketch.hit(key)
    assert len(sketch) <= 8
    assert sketch.total == 4000
    top = sketch.top(8)
    top_keys = [key for key, _, _ in top]
    # The guaranteed-heavy keys (freq > total/budget) must be present.
    for key, freq in truth.items():
        if freq > 4000 / 8:
            assert key in top_keys, (key, freq)
    # The sketch's defining bound: count - err <= truth <= count.
    for key, count, err in top:
        true = truth.get(key, 0)
        assert count - err <= true <= count, (key, count, err, true)


def test_key_load_tracker_per_service_and_publish():
    metrics = MetricsRegistry()
    tracker = KeyLoadTracker(metrics, top_k=4)
    for _ in range(5):
        tracker.note("shard-0", "hot")
    tracker.note("shard-0", "cold")
    tracker.note("shard-1", "other")
    assert tracker.services() == ["shard-0", "shard-1"]
    assert tracker.top("shard-0")[0] == ("hot", 5, 0)
    assert tracker.top("missing") == []
    tracker.publish()
    snap = metrics.snapshot()["gauges"]
    assert snap["placement.load.volume.shard-0"] == 6
    assert snap["placement.load.hottest.shard-0"] == 5
    assert metrics.value("placement.load.noted") == 7
    assert any("hot×5" in line for line in tracker.report_lines())


# ---------------------------------------------------------------------------
# SLO windows: watermarks, breach latching, re-arming
# ---------------------------------------------------------------------------

def test_slo_breach_latches_once_and_rearms():
    metrics = MetricsRegistry()
    fired = []
    slo = SloTracker(metrics, window=8, thresholds={99: 0.1},
                     min_samples=4, clock=lambda: 1.5)
    slo.on_breach = fired.append
    for _ in range(4):
        slo.observe("svc", 0.01)
    assert slo.breaches == []              # under the bound
    slo.observe("svc", 0.5)                # p99 jumps over -> breach
    slo.observe("svc", 0.5)                # still latched: no second one
    assert len(slo.breaches) == 1 and len(fired) == 1
    breach = slo.breaches[0]
    assert (breach.service, breach.percentile) == ("svc", 99)
    assert breach.time == 1.5 and breach.value > breach.threshold
    for _ in range(8):                     # flush the window clean
        slo.observe("svc", 0.01)
    slo.observe("svc", 0.5)                # latch re-armed -> new breach
    assert len(slo.breaches) == 2
    assert metrics.value("obs.slo.breaches") == 2


def test_slo_watermarks_and_publish():
    metrics = MetricsRegistry()
    slo = SloTracker(metrics, window=100, min_samples=1)
    for i in range(100):
        slo.observe("svc", (i + 1) / 1000)
    marks = slo.watermarks("svc")
    assert marks["p50"] == pytest.approx(0.051)  # nearest rank
    assert marks["p99"] == pytest.approx(0.099)
    slo.publish()
    assert metrics.snapshot()["gauges"]["obs.slo.p99.svc"] == (
        pytest.approx(0.099))
    assert slo.watermarks("unseen") == {"p50": 0.0, "p95": 0.0,
                                        "p99": 0.0}


def test_slo_rejects_unknown_percentile():
    with pytest.raises(ValueError):
        SloTracker(MetricsRegistry(), thresholds={90: 0.1})


# ---------------------------------------------------------------------------
# Flight recorder: bounded ring, deterministic dumps
# ---------------------------------------------------------------------------

def test_flight_ring_overwrites_oldest():
    metrics = MetricsRegistry()
    clock = iter(range(100))
    flight = FlightRecorder(metrics, capacity=4,
                            clock=lambda: float(next(clock)))
    for i in range(10):
        flight.note("evt", i=i)
    assert len(flight) == 4 and flight.total_noted == 10
    assert [fields["i"] for _, _, _, fields in flight.entries()] == (
        [6, 7, 8, 9])                      # oldest first, newest retained
    seqs = [seq for seq, _, _, _ in flight.entries()]
    assert seqs == sorted(seqs)
    assert metrics.value("obs.recorder.overwrites") == 6


def test_flight_dump_is_deterministic():
    def run():
        flight = FlightRecorder(MetricsRegistry(), capacity=8,
                                clock=lambda: 0.25)
        flight.note("suspect", pid=3)
        # Insertion order of fields must not matter: sorted rendering.
        flight.note("rebind", members=[1, 2], service="kv")
        flight.note("rebind", service="kv", members=[1, 2])
        return flight.dump("test")

    first, second = run(), run()
    assert first == second
    lines = first.split("\n")
    assert len(lines) == 3
    # Past the sequence number, field order must not show.
    assert lines[1].split("] ", 1)[1] == lines[2].split("] ", 1)[1]
    assert "pid=3" in lines[0]


def test_flight_dump_bookkeeping_and_live_registry():
    metrics = MetricsRegistry()
    flight = FlightRecorder(metrics, capacity=8)
    flight.note("evt")
    text = flight.dump("because")
    assert flight.dumps == [("because", text)]
    assert metrics.value("obs.recorder.dumps") == 1
    assert flight in live_recorders()      # visible to the failure hook
    flight.publish()
    assert metrics.snapshot()["gauges"]["obs.recorder.retained"] == 1


def test_flight_note_accepts_wire_pipeline_fields():
    # Regression: the wire pipeline tapes fast-lane activations with the
    # payload's class name.  A field literally named ``kind`` collides
    # with note()'s positional parameter and raises — which, on the
    # heartbeat send path, silently kills the sender daemon and drives
    # every detector to suspicion.  Keep the call shape valid.
    flight = FlightRecorder(MetricsRegistry(), capacity=4)
    flight.note("fastlane", src=1, dst=2, payload="Heartbeat")
    flight.note("backpressure", src=1, dst=2, inflight=9)
    assert len(flight) == 2


# ---------------------------------------------------------------------------
# Profiler attribution
# ---------------------------------------------------------------------------

def test_profiler_nested_self_vs_cumulative():
    prof = KernelProfiler()
    prof.handler_enter(1, "outer", "h1")
    prof.handler_enter(1, "inner", "h2")
    prof.handler_exit(1, 0.3)
    prof.handler_exit(1, 1.0)
    sites = {s.label: s for s in prof.handler_sites()}
    assert sites["inner:h2"].self_time == pytest.approx(0.3)
    assert sites["outer:h1"].cum == pytest.approx(1.0)
    assert sites["outer:h1"].self_time == pytest.approx(0.7)
    for site in sites.values():
        assert 0.0 <= site.self_time <= site.cum
    assert "outer:h1;inner:h2 300000" in prof.collapsed()


# ---------------------------------------------------------------------------
# End to end: the assembled observatory on a live deployment
# ---------------------------------------------------------------------------

def _run_observed_deployment(observatory):
    deployment = Deployment(seed=11, membership="oracle",
                            observatory=observatory)
    deployment.add_service("kv", ServiceSpec(), KVStore, servers=2)
    for i in range(6):
        result = deployment.call_and_run(
            "kv", "put", {"key": f"k{i % 2}", "value": i})
        assert result.ok
    deployment.publish_runtime_stats()
    return deployment


def test_observatory_end_to_end_report():
    deployment = _run_observed_deployment(True)
    obs = deployment.observatory
    assert obs.profiler.steps_seen > 0
    assert obs.profiler.handler_sites()    # virtual time attributed
    marshal = _marshal()
    assert marshal._PROFILER is obs.profiler  # stub hook installed
    marshal.marshal({"probe": 1})
    assert obs.profiler.marshal_calls > 0
    assert deployment._slo.watermarks("kv")["p99"] > 0.0
    snap = deployment.metrics.snapshot()["gauges"]
    assert snap["obs.profile.steps"] > 0
    report = deployment.render_report()
    for header in ("kernel profile", "per-shard hot keys",
                   "SLO windows", "flight recorder"):
        assert header in report, header
    deployment.shutdown()
    assert _marshal()._PROFILER is None    # close() released the global


def test_observatory_breach_dumps_flight_tape():
    from repro.obs.observatory import ObservatoryConfig
    config = ObservatoryConfig(slo_thresholds={99: 0.0},
                               slo_min_samples=1)
    deployment = _run_observed_deployment(config)
    assert deployment._slo.breaches       # every call is over a 0s bound
    reasons = [reason for reason, _ in deployment.flight.dumps]
    assert any(reason.startswith("slo-breach:kv") for reason in reasons)
    tape = deployment.flight.format_dump()
    assert "slo-breach" in tape
    deployment.shutdown()


def test_disabled_deployment_has_no_observatory_hooks():
    deployment = Deployment(seed=11, membership="oracle")
    assert deployment.observatory is None
    assert deployment.flight is None and deployment._slo is None
    assert deployment.runtime.profiler is None
    assert deployment.fabric.pipeline.flight is None
    assert _marshal()._PROFILER is None
    assert ShardRouter(["a", "b"])._load is None
    from repro.errors import ReproError
    with pytest.raises(ReproError):
        deployment.render_report()
    deployment.shutdown()
