"""The observability layer: span trees, event records, metrics, export.

The tentpole scenario: a group RPC over five servers on lossy links must
produce ONE connected span tree per call — client root, per-transmission
send events, per-server execute spans, reply dispatches — with every
retransmission attributed to Reliable Communication.  And with the layer
disabled, the instrumented code paths must emit nothing at all.
"""

import io
import json

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.obs import (
    MetricsRegistry,
    Recorder,
    format_flame,
    read_jsonl,
    span_trees,
    to_jsonl,
)

#: 25% loss + seed 0 deterministically loses a few CALLs/replies, forcing
#: Reliable Communication to retransmit (the sim replays draws exactly).
LOSSY = LinkSpec(delay=0.01, jitter=0.002, loss=0.25)


def lossy_cluster(obs=True, seed=0):
    return ServiceCluster(ServiceSpec(acceptance=5, unique=True), KVStore,
                          n_servers=5, seed=seed, default_link=LOSSY,
                          obs=obs)


@pytest.fixture(scope="module")
def traced():
    """One traced call over the lossy 5-server cluster (module-shared:
    the scenario is deterministic and the tests only read)."""
    cluster = lossy_cluster()
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=1.0)
    assert result.ok
    return cluster, result


# ----------------------------------------------------------------------
# Span-tree shape
# ----------------------------------------------------------------------

def test_one_connected_tree_per_call(traced):
    cluster, result = traced
    rec = cluster.obs
    # Every span of the run belongs to a single trace with a single root.
    traces = {s.trace for s in rec.spans}
    assert len(traces) == 1
    roots = rec.roots()
    assert len(roots) == 1
    assert roots[0].name == "rpc.call"
    assert roots[0].attrs["status"] == "OK"
    assert roots[0].duration > 0

    # ... and the tree is fully connected: every non-root span's parent
    # exists in the same trace.
    by_sid = {s.sid: s for s in rec.spans}
    for span in rec.spans:
        if span.parent is not None:
            assert span.parent in by_sid
            assert by_sid[span.parent].trace == span.trace


def test_every_server_executed_under_the_root(traced):
    cluster, _ = traced
    rec = cluster.obs
    execs = [s for s in rec.spans if s.name == "server.execute"]
    assert len(execs) == 5
    assert {s.node for s in execs} == {1, 2, 3, 4, 5}
    # Each execute sits under that server's msg.Call dispatch span.
    by_sid = {s.sid: s for s in rec.spans}
    for span in execs:
        assert by_sid[span.parent].name == "msg.Call"
        assert by_sid[span.parent].node == span.node


def test_retransmissions_attributed_to_reliable_communication(traced):
    cluster, _ = traced
    rec = cluster.obs
    assert cluster.trace.losses > 0  # the scenario actually lost packets
    retrans = [s for s in rec.spans
               if s.name == "rpc.send" and s.attrs.get("retransmit")]
    assert retrans  # losses forced at least one retransmission
    assert all(s.attrs["micro"] == "Reliable_Communication"
               for s in retrans)
    # Retransmits hang off the client's root, like the initial send.
    root = rec.roots()[0]
    assert all(s.parent == root.sid for s in retrans)
    initial = [s for s in rec.spans
               if s.name == "rpc.send" and not s.attrs.get("retransmit")]
    assert len(initial) == 1 and initial[0].attrs["micro"] == "RPC_Main"


def test_replies_nest_under_their_server_subtree(traced):
    cluster, _ = traced
    rec = cluster.obs
    by_sid = {s.sid: s for s in rec.spans}
    replies = [s for s in rec.spans if s.name == "msg.Reply"]
    assert replies  # at least one reply reached the client
    for span in replies:
        assert span.node == cluster.client
        assert by_sid[span.parent].name == "server.execute"


def test_handler_records_cover_the_composition(traced):
    cluster, _ = traced
    rec = cluster.obs
    handlers = [e for e in rec.events if e.kind == "handler"]
    assert handlers
    owners = {e.fields["owner"] for e in handlers}
    # Every micro-protocol of this composition did traced work.
    assert {"RPC_Main", "Reliable_Communication", "Synchronous_Call",
            "Acceptance", "Collation", "Unique_Execution"} <= owners
    # ... and the per-owner histograms aggregate the same records.
    for owner in owners:
        hist = rec.metrics.histogram(f"handler.{owner}")
        assert hist.count == sum(1 for e in handlers
                                 if e.fields["owner"] == owner)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------

def test_network_counters_live_in_the_registry(traced):
    cluster, _ = traced
    assert cluster.metrics is cluster.obs.metrics
    assert cluster.metrics.value("net.send") == cluster.trace.sends
    assert cluster.metrics.value("net.drop-loss") == cluster.trace.losses
    # The legacy mapping view agrees with the registry.
    assert cluster.trace.counts["send"] == cluster.metrics.value("net.send")
    assert dict(cluster.trace.counts)["deliver"] == \
        cluster.trace.deliveries


def test_runtime_stats_publish_as_gauges(traced):
    cluster, _ = traced
    cluster.publish_runtime_stats()
    snap = cluster.metrics.snapshot()
    assert snap["gauges"]["kernel.steps_executed"] > 0
    assert snap["gauges"]["kernel.tasks_spawned"] > 0
    assert snap["gauges"]["kernel.timers_fired"] > 0


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------

def test_jsonl_roundtrip_reconstructs_the_tree(traced):
    cluster, _ = traced
    buf = io.StringIO()
    n = cluster.export_trace(buf)
    lines = [json.loads(line) for line in buf.getvalue().splitlines()]
    assert len(lines) == n
    spans = [l for l in lines if l["t"] == "span"]
    assert len(spans) == len(cluster.obs.spans)
    roots = [l for l in spans if l["parent"] is None]
    assert len(roots) == 1 and roots[0]["name"] == "rpc.call"
    # read_jsonl parses what to_jsonl wrote.
    parsed = read_jsonl(io.StringIO(buf.getvalue()))
    assert len(parsed["span"]) == len(spans)
    assert parsed["metric"]  # counters rode along


def test_flame_summary_names_the_call_chain(traced):
    cluster, _ = traced
    flame = cluster.format_flame()
    for needle in ("rpc.call", "server.execute", "msg.Reply",
                   "retransmit=True", "Reliable_Communication"):
        assert needle in flame


def test_span_trees_nest_handlers(traced):
    cluster, _ = traced
    trees = span_trees(cluster.obs)
    (roots,) = trees.values()
    root = roots[0]
    # NEW_RPC_CALL / CALL_FROM_USER handlers ran inside the root span.
    assert any(h.fields["event"] == "CALL_FROM_USER"
               for h in root.handlers)


# ----------------------------------------------------------------------
# Disabled mode
# ----------------------------------------------------------------------

def test_disabled_recorder_emits_nothing():
    recorder = Recorder(enabled=False)
    cluster = lossy_cluster(obs=recorder)
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=1.0)
    assert result.ok
    # attach_obs refused the disabled recorder outright ...
    assert cluster.obs is None
    assert cluster.runtime.obs is None
    # ... so nothing was recorded anywhere.
    assert recorder.spans == []
    assert recorder.events == []
    # No handler histograms accumulated (network counters still count —
    # they are metrics, not tracing).
    assert recorder.metrics.snapshot()["histograms"] == {}
    assert cluster.metrics.counter_names("handler.") == []
    # No span context leaked onto the wire.
    for event in cluster.trace.events:
        msg = event.detail
        if hasattr(msg, "trace_ctx"):
            assert msg.trace_ctx() is None


def test_obs_off_by_default():
    cluster = lossy_cluster(obs=False)
    assert cluster.obs is None
    assert isinstance(cluster.metrics, MetricsRegistry)
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=1.0)
    assert result.ok
    assert cluster.metrics.value("net.send") > 0


def test_behavior_identical_with_and_without_tracing():
    """Tracing must be read-only: same results, same message pattern."""
    runs = []
    for obs in (False, True):
        cluster = lossy_cluster(obs=obs)
        result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                      extra_time=1.0)
        runs.append((result.status, result.args,
                     cluster.trace.sends, cluster.trace.losses,
                     cluster.runtime.now()))
    assert runs[0] == runs[1]


# ----------------------------------------------------------------------
# Recorder / exporter units (no cluster)
# ----------------------------------------------------------------------

def test_standalone_recorder_parenting():
    rec = Recorder()
    root = rec.start_span("root")
    rec.push_ctx(root.ctx)
    child = rec.start_span("child")
    rec.pop_ctx()
    rec.end_span(child)
    rec.end_span(root)
    assert child.trace == root.trace
    assert child.parent == root.sid
    orphanless = rec.start_span("fresh")
    assert orphanless.trace != root.trace  # new trace when no context


def test_flame_formats_standalone_recorder():
    rec = Recorder()
    span = rec.start_span("rpc.call", node=7, attrs={"op": "x"})
    rec.end_span(span)
    out = format_flame(rec)
    assert "rpc.call" in out and "node=7" in out
    buf = io.StringIO()
    assert to_jsonl(rec, buf) >= 1
