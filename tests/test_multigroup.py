"""Generality checks: multiple groups per client, nested server calls.

The paper's model never restricts a composite to one server group — the
group travels in every call — and a server site runs the same composite
as a client site.  These tests exercise both consequences: one client
alternating between overlapping groups, and a server application that
issues its own group RPC while serving one (a chained call).
"""

import pytest

from repro import Group, LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import KVStore, ServerApp

FAST = LinkSpec(delay=0.005, jitter=0.0)


def test_one_client_two_overlapping_groups():
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=2)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)
    group_a = Group("front", [1, 2])
    group_b = Group("back", [2, 3])
    results = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        results["a"] = await grpc.call("put", {"key": "ka", "value": 1},
                                       group_a)
        results["b"] = await grpc.call("put", {"key": "kb", "value": 2},
                                       group_b)

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    assert results["a"].ok and results["b"].ok
    assert cluster.app(1).data == {"ka": 1}
    assert cluster.app(2).data == {"ka": 1, "kb": 2}  # in both groups
    assert cluster.app(3).data == {"kb": 2}


class FrontendApp(ServerApp):
    """A server whose procedure performs its own group RPC downstream."""

    def __init__(self):
        super().__init__()
        self.grpc = None          # injected after cluster construction
        self.backend = None

    async def handle_lookup(self, args):
        # Chained call: this site acts as a client of the backend group
        # while serving the frontend call.
        result = await self.grpc.call("get", {"key": args["key"]},
                                      self.backend)
        return {"via": self.node.pid, "value": result.args,
                "status": result.status.value}


def test_nested_server_to_server_call():
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=1)

    def factory(pid):
        return FrontendApp() if pid == 1 else KVStore()

    cluster = ServiceCluster(spec, factory, n_servers=3,
                             default_link=FAST)
    frontend = Group("frontend", [1])
    backend = Group("backend", [2, 3])
    app = cluster.app(1)
    app.grpc = cluster.grpc(1)
    app.backend = backend
    outcome = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        # Seed the backend directly.
        seed = await grpc.call("put", {"key": "city", "value": "tucson"},
                               backend)
        assert seed.ok
        # Then query through the frontend, which chains to the backend.
        outcome["result"] = await grpc.call("lookup", {"key": "city"},
                                            frontend)

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    result = outcome["result"]
    assert result.ok
    assert result.args["via"] == 1
    assert result.args["value"] == "tucson"
    assert result.args["status"] == "OK"


def test_nested_call_ids_do_not_collide_with_serving():
    # The frontend's outgoing calls get ids from ITS composite's counter;
    # the client's ids come from its own — keyed by (client, inc, id) at
    # the servers, so identical numeric ids cannot collide.
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=1)

    def factory(pid):
        return FrontendApp() if pid == 1 else KVStore()

    cluster = ServiceCluster(spec, factory, n_servers=3,
                             default_link=FAST)
    frontend = Group("frontend", [1])
    backend = Group("backend", [2, 3])
    app = cluster.app(1)
    app.grpc = cluster.grpc(1)
    app.backend = backend
    statuses = []

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        await grpc.call("put", {"key": "k0", "value": 0}, backend)
        for _ in range(3):
            result = await grpc.call("lookup", {"key": "k0"}, frontend)
            statuses.append(result.status)

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    assert statuses == [Status.OK] * 3
