"""Documented limits: ordering gates vs recovering servers.

A server that crashes and recovers has lost its ordering state (FIFO's
per-client progress, Total Order's rank tables); rejoining mid-history
would need state transfer, which neither the paper nor this reproduction
implements.  These tests pin down the *documented* behavior so a change
in it is caught: the recovered replica stays quiescent (gates everything
from the new position it cannot reconcile), while the service remains
available through the survivors whenever acceptance does not require the
rejoiner.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import KVStore

FAST = LinkSpec(delay=0.005, jitter=0.0)


def test_fifo_service_survives_server_bounce_via_survivor():
    spec = ServiceSpec(unique=True, ordering="fifo", acceptance=1,
                       bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST)
    for i in range(3):
        assert cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                    extra_time=0.2).ok
    cluster.crash(2)
    cluster.recover(2)
    cluster.settle(0.1)
    for i in range(3, 5):
        assert cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                    extra_time=0.3).ok
    # The survivor applied everything, in order.
    assert [k for _, k, _ in cluster.app(1).apply_log] == \
        [f"k{i}" for i in range(5)]
    # The rejoiner cannot reconcile mid-sequence ids: it stays quiescent
    # (known limitation — rejoin needs state transfer).
    assert cluster.app(2).apply_log == []


def test_fifo_rejoiner_resumes_when_the_client_reincarnates():
    # The client's next incarnation restarts ids at 1, which the
    # recovered server CAN order from scratch — recovery of the pair.
    spec = ServiceSpec(unique=True, ordering="fifo", acceptance=2,
                       bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST)
    assert cluster.call_and_run("put", {"key": "old", "value": 0},
                                extra_time=0.2).ok
    cluster.crash(2)
    cluster.recover(2)
    cluster.crash(cluster.client)
    cluster.recover(cluster.client)
    cluster.settle(0.1)
    result = cluster.call_and_run("put", {"key": "new", "value": 1},
                                  extra_time=0.3)
    assert result.ok   # acceptance=2: BOTH servers executed it
    assert [k for _, k, _ in cluster.app(2).apply_log] == ["new"]


def test_total_order_survivors_unaffected_by_follower_bounce():
    spec = ServiceSpec(unique=True, ordering="total", acceptance=1,
                       bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)
    assert cluster.call_and_run("put", {"key": "a", "value": 1},
                                extra_time=0.2).ok
    cluster.crash(1)   # a follower, not the leader (3)
    cluster.recover(1)
    cluster.settle(0.1)
    for key in ("b", "c"):
        assert cluster.call_and_run("put", {"key": key, "value": 1},
                                    extra_time=0.3).ok
    # Leader and the never-crashed follower agree on the full sequence.
    assert [k for _, k, _ in cluster.app(3).apply_log] == ["a", "b", "c"]
    assert [k for _, k, _ in cluster.app(2).apply_log] == ["a", "b", "c"]
