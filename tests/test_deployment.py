"""The deployment plane: many named services on one simulated fabric.

Covers the multi-service refactor: co-hosted composites with *different*
ServiceSpecs on one node, service-key demux routing, name resolution
through the binding registry at call time, rebinding after
reconfiguration, pid-collision validation, per-service metrics and span
labels, and the shared per-node heartbeat detector.
"""

import io

import pytest

from repro import (
    Deployment,
    Group,
    ServiceCluster,
    ServiceSpec,
    read_optimized,
    replicated_state_machine,
)
from repro.apps import CounterApp, KVStore
from repro.core.deployment import CLIENT_BASE_PID
from repro.errors import BindingError, ConfigurationError, ReproError


def two_service_deployment(**kwargs):
    """Two differently-specced services sharing server node 2 and one
    client node: the tentpole configuration."""
    dep = Deployment(seed=5, **kwargs)
    orders = dep.add_service("orders", replicated_state_machine(2),
                             KVStore, servers=[1, 2], clients=[101])
    sessions = dep.add_service("sessions", read_optimized(2.0),
                               KVStore, servers=[2, 3], clients=[101])
    return dep, orders, sessions


# ---------------------------------------------------------------------------
# Co-hosting: one node, several composites, different semantics
# ---------------------------------------------------------------------------


def test_two_services_share_a_node_with_different_specs():
    dep, orders, sessions = two_service_deployment()

    # Node 2 carries a composite for each service; they are distinct
    # objects with distinct specs.
    assert orders.grpc(2) is not sessions.grpc(2)
    assert orders.spec.ordering == "total"
    assert sessions.spec.ordering == "none"
    assert orders.spec != sessions.spec

    async def scenario():
        r1 = await dep.call(101, "orders", "put",
                            {"key": "o1", "value": 1})
        r2 = await dep.call(101, "sessions", "put",
                            {"key": "s1", "value": 2})
        assert r1.ok and r2.ok

    dep.run_scenario(scenario())

    # Each write landed in the right application on the shared node.
    assert dep.services["orders"].app(2).data == {"o1": 1}
    assert dep.services["sessions"].app(2).data == {"s1": 2}
    # And never leaked into the other service's replicas.
    assert dep.services["orders"].app(1).data == {"o1": 1}
    assert dep.services["sessions"].app(3).data == {"s1": 2}


def test_service_key_routes_wire_messages():
    dep, orders, sessions = two_service_deployment()
    router = dep.routers[2]
    assert set(router.services()) == {"orders", "sessions"}
    assert router.route("orders") is orders.grpc(2)
    assert router.route("sessions") is sessions.grpc(2)


def test_services_with_different_apps():
    dep = Deployment(seed=1)
    dep.add_service("kv", read_optimized(), KVStore,
                    servers=[1], clients=[101])
    dep.add_service("ctr", read_optimized(), CounterApp,
                    servers=[1], clients=[101])

    async def scenario():
        r1 = await dep.call(101, "kv", "put", {"key": "k", "value": 9})
        r2 = await dep.call(101, "ctr", "inc", {"amount": 5})
        assert r1.ok and r2.ok

    dep.run_scenario(scenario())
    assert dep.services["kv"].app(1).data == {"k": 9}
    assert dep.services["ctr"].app(1).value == 5


# ---------------------------------------------------------------------------
# Configuration validation (the latent pid-collision bug)
# ---------------------------------------------------------------------------


def test_cluster_rejects_server_count_into_client_range():
    with pytest.raises(ConfigurationError):
        ServiceCluster(read_optimized(), KVStore,
                       n_servers=CLIENT_BASE_PID)


def test_deployment_rejects_server_pid_in_client_range():
    dep = Deployment()
    with pytest.raises(ConfigurationError):
        dep.add_service("svc", read_optimized(), KVStore,
                        servers=[1, CLIENT_BASE_PID], clients=[200])


def test_deployment_rejects_pid_as_both_server_and_client():
    dep = Deployment()
    with pytest.raises(ConfigurationError):
        dep.add_service("svc", read_optimized(), KVStore,
                        servers=[1, 2], clients=[2])


def test_duplicate_service_name_rejected():
    dep = Deployment()
    dep.add_service("svc", read_optimized(), KVStore,
                    servers=[1], clients=[101])
    with pytest.raises(BindingError):
        dep.add_service("svc", read_optimized(), KVStore,
                        servers=[2], clients=[101])


def test_unknown_membership_mode_rejected():
    with pytest.raises(ReproError):
        Deployment(membership="gossip")


# ---------------------------------------------------------------------------
# Name resolution through the binding registry
# ---------------------------------------------------------------------------


def test_call_to_unknown_service_raises():
    dep, _, _ = two_service_deployment()

    async def scenario():
        with pytest.raises(BindingError):
            await dep.call(101, "billing", "put", {})

    dep.run_scenario(scenario())


def test_call_from_non_participant_node_raises():
    dep = Deployment(seed=2)
    dep.add_service("a", read_optimized(), KVStore,
                    servers=[1], clients=[101])
    dep.add_service("b", read_optimized(), KVStore,
                    servers=[2], clients=[102])

    async def scenario():
        # 102 participates in "b" only; it has no composite for "a".
        with pytest.raises(BindingError):
            await dep.call(102, "a", "get", {"key": "x"})

    dep.run_scenario(scenario())


def test_rebind_resolves_at_call_time():
    dep = Deployment(seed=3)
    svc = dep.add_service("kv", read_optimized(), KVStore,
                          servers=[1, 2, 3], clients=[101])

    async def before():
        result = await dep.call(101, "kv", "put", {"key": "k", "value": 1})
        assert result.ok

    dep.run_scenario(before())

    # Reconfigure: node 3 leaves the service. Later calls resolve the
    # name to the new group through the registry.
    new_group = dep.rebind("kv", [1, 2])
    assert svc.group == new_group
    assert dep.registry.lookup("kv").members == (1, 2)

    async def after():
        result = await dep.call(101, "kv", "get", {"key": "k"})
        assert result.ok and result.args == 1

    dep.run_scenario(after())
    # Node 3 saw the first write but none of the post-rebind traffic.
    assert dep.metrics.value("service.kv.calls") == 2


def test_rebind_to_non_member_rejected():
    dep = Deployment()
    dep.add_service("kv", read_optimized(), KVStore,
                    servers=[1, 2], clients=[101])
    with pytest.raises(BindingError):
        dep.rebind("kv", [1, 7])       # 7 runs no composite
    with pytest.raises(BindingError):
        dep.rebind("kv", [1, 101])     # 101 is a client, not a server


def test_rebind_accepts_explicit_group():
    dep = Deployment()
    dep.add_service("kv", read_optimized(), KVStore,
                    servers=[1, 2], clients=[101])
    group = dep.rebind("kv", Group("kv", [2]))
    assert group.members == (2,)


def test_rebind_with_calls_in_flight():
    """In-flight calls complete against the group they resolved; calls
    issued after the rebind resolve the new one.  Nothing demux-misses
    or errors in between."""
    dep = Deployment(seed=6)
    dep.add_service("kv", read_optimized(5.0),
                    lambda: KVStore(op_delay=0.4),
                    servers=[1, 2, 3], clients=[101])
    results = []

    async def caller(i):
        results.append(await dep.call(101, "kv", "put",
                                      {"key": f"k{i}", "value": i}))

    async def scenario():
        tasks = [dep.runtime.spawn(caller(i), name=f"caller-{i}")
                 for i in range(6)]
        await dep.runtime.sleep(0.1)       # everyone mid-execution
        dep.rebind("kv", [1, 2])
        for i in range(6, 9):              # post-rebind traffic
            tasks.append(dep.runtime.spawn(caller(i), name=f"caller-{i}"))
        for task in tasks:
            await dep.runtime.join(task)

    dep.run_scenario(scenario(), extra_time=2.0)
    assert len(results) == 9
    assert all(r.ok for r in results)
    # The pre-rebind writes reached the old group's members; node 3 saw
    # none of the post-rebind traffic.
    late = {f"k{i}" for i in range(6, 9)}
    assert late <= set(dep.services["kv"].app(1).data)
    assert late & set(dep.services["kv"].app(3).data) == set()


# ---------------------------------------------------------------------------
# Per-service observability labels
# ---------------------------------------------------------------------------


def test_per_service_metrics_labels():
    dep, _, _ = two_service_deployment()

    async def scenario():
        await dep.call(101, "orders", "put", {"key": "a", "value": 1})
        await dep.call(101, "sessions", "put", {"key": "b", "value": 2})
        await dep.call(101, "sessions", "get", {"key": "b"})

    dep.run_scenario(scenario())

    assert dep.metrics.value("service.orders.calls") == 1
    assert dep.metrics.value("service.sessions.calls") == 2
    assert dep.metrics.value("service.orders.status.OK") == 1
    assert dep.metrics.value("service.sessions.status.OK") == 2
    # Executions counted per shard-service by the dispatcher.
    assert dep.metrics.value("service.orders.executions") >= 1
    assert dep.metrics.value("service.sessions.executions") >= 1
    snap = dep.metrics.snapshot()
    assert "service.orders.latency" in snap["histograms"]
    assert "service.sessions.latency" in snap["histograms"]


def test_per_service_span_labels():
    dep, _, _ = two_service_deployment(obs=True)

    async def scenario():
        await dep.call(101, "orders", "put", {"key": "a", "value": 1})
        await dep.call(101, "sessions", "get", {"key": "a"})

    dep.run_scenario(scenario())

    labels = {s.attrs.get("service") for s in dep.obs.spans
              if s.name == "rpc.call"}
    assert labels == {"orders", "sessions"}
    # Server-side spans carry the label too.
    exec_labels = {s.attrs.get("service") for s in dep.obs.spans
                   if s.name == "server.execute"}
    assert "orders" in exec_labels
    # The JSONL exporter surfaces it.
    out = io.StringIO()
    dep.export_trace(out)
    assert '"service": "orders"' in out.getvalue()


# ---------------------------------------------------------------------------
# Shared per-node heartbeat membership
# ---------------------------------------------------------------------------


def test_heartbeat_detector_shared_across_cohosted_services():
    dep, orders, sessions = two_service_deployment(
        membership="heartbeat", heartbeat_interval=0.05, suspect_after=3)
    # One detector per node, not per composite.
    assert set(dep._membership.detectors) == {1, 2, 3, 101}
    # Node 2 hosts two composites, both fed by the same detector.
    detector = dep._membership.detectors[2]
    assert len(detector.listeners) == 2


def test_heartbeat_suspicion_fans_out_to_all_cohosted_composites():
    dep, orders, sessions = two_service_deployment(
        membership="heartbeat", heartbeat_interval=0.05, suspect_after=3)
    dep.settle(0.5)            # everyone alive and seen
    dep.crash(3)               # a "sessions" server dies
    dep.settle(1.0)            # heartbeats go missing -> suspicion
    # Every composite on every live node dropped 3 from its view.
    for svc in (orders, sessions):
        for pid, grpc in svc.grpcs.items():
            if pid == 3:
                continue
            assert 3 not in grpc.members


def test_services_added_after_start_join_heartbeat_stream():
    dep = Deployment(seed=4, membership="heartbeat",
                     heartbeat_interval=0.05, suspect_after=3)
    dep.add_service("a", read_optimized(), KVStore,
                    servers=[1, 2], clients=[101])
    dep.settle(0.3)
    dep.add_service("b", read_optimized(), KVStore,
                    servers=[2, 3], clients=[101])
    dep.settle(0.5)
    # The late node's detector is live and nobody suspects anybody.
    for pid, detector in dep._membership.detectors.items():
        assert detector._suspected == set(), f"node {pid}"

    async def scenario():
        result = await dep.call(101, "b", "put", {"key": "k", "value": 1})
        assert result.ok

    dep.run_scenario(scenario())


# ---------------------------------------------------------------------------
# The back-compat wrapper delegates to a one-service deployment
# ---------------------------------------------------------------------------


def test_cluster_is_a_one_service_deployment():
    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=2)
    assert isinstance(cluster.deployment, Deployment)
    assert set(cluster.deployment.services) == {"servers"}
    assert cluster.group == Group("servers", [1, 2])
    result = cluster.call_and_run("put", {"key": "k", "value": 1})
    assert result.ok
    # Wrapper calls surface in the per-service metric namespace.
    assert cluster.metrics.value("service.servers.calls") == 1


def test_cluster_still_rejects_zero_servers():
    with pytest.raises(ReproError):
        ServiceCluster(ServiceSpec(), KVStore, n_servers=0)
