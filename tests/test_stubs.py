"""Stubs: marshalling, generated proxies, binding, end-to-end usage."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Group, LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.core.microprotocols import average
from repro.errors import BindingError, MarshalError, RPCTimeout
from repro.net.message import Envelope, wire_size
from repro.stubs import (
    BindingRegistry,
    MarshallingApp,
    ServiceInterface,
    client_stub,
    marshal,
    marshalled_size,
    unmarshal,
)
from repro.stubs.stubgen import unmarshalled_collation

FAST = LinkSpec(delay=0.005, jitter=0.0)


# ----------------------------------------------------------------------
# Marshalling
# ----------------------------------------------------------------------

SAMPLES = [
    None, True, False, 0, 1, -1, 2 ** 100, -(2 ** 100), 3.14, -0.0,
    "", "hello", "ünïcødé", b"", b"\x00\xff", [], [1, [2, [3]]],
    (), (1, "a"), {}, {"k": 1, "nested": {"x": [True, None]}},
]


@pytest.mark.parametrize("value", SAMPLES, ids=repr)
def test_marshal_roundtrip(value):
    assert unmarshal(marshal(value)) == value
    # The wire pipeline's size estimate (coalescing cap, queue budgets)
    # must be defined, positive and stable across a marshal round trip
    # for everything the stubs can carry.
    assert wire_size(value) >= 1
    assert wire_size(unmarshal(marshal(value))) == wire_size(value)


@pytest.mark.parametrize("value", SAMPLES, ids=repr)
def test_envelope_repr_is_stable_and_sized(value):
    env = Envelope(1, 2, value, 0.0, seq=77)
    assert env.wire_size() == wire_size(value)
    assert repr(env) == (f"<Envelope #77 1->2 {type(value).__name__} "
                         f"size={wire_size(value)}>")
    dup = Envelope(1, 2, value, 0.0, seq=77, copy=1)
    assert repr(dup).endswith("copy=1>")


def test_marshal_distinguishes_list_and_tuple():
    assert unmarshal(marshal([1, 2])) == [1, 2]
    assert unmarshal(marshal((1, 2))) == (1, 2)
    assert isinstance(unmarshal(marshal((1,))), tuple)


def test_marshal_is_deterministic_regardless_of_dict_order():
    a = marshal({"x": 1, "y": 2})
    b = marshal({"y": 2, "x": 1})
    assert a == b


def test_marshal_rejects_unsupported_types():
    with pytest.raises(MarshalError):
        marshal(object())
    with pytest.raises(MarshalError):
        marshal({1: "non-string key"})


def test_unmarshal_rejects_garbage():
    with pytest.raises(MarshalError):
        unmarshal(b"\x99")
    with pytest.raises(MarshalError):
        unmarshal(marshal(1) + b"trailing")
    with pytest.raises(MarshalError):
        unmarshal(marshal("hello")[:-1])


def test_marshalled_size():
    assert marshalled_size(None) == 1
    assert marshalled_size("ab") == 1 + 4 + 2


@settings(max_examples=200, deadline=None)
@given(st.recursive(
    st.none() | st.booleans() | st.integers() |
    st.floats(allow_nan=False) | st.text() | st.binary(),
    lambda children: st.lists(children, max_size=4) |
    st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=20))
def test_marshal_roundtrip_property(value):
    assert unmarshal(marshal(value)) == value


# ----------------------------------------------------------------------
# Binding
# ----------------------------------------------------------------------

def test_binding_registry_bind_lookup_unbind():
    registry = BindingRegistry()
    group = Group("kv", [1, 2, 3])
    registry.bind("kv-service", group)
    assert registry.lookup("kv-service") is group
    assert "kv-service" in registry
    assert registry.names() == ["kv-service"]
    registry.unbind("kv-service")
    assert "kv-service" not in registry


def test_binding_refuses_silent_overwrite():
    registry = BindingRegistry()
    registry.bind("svc", Group("a", [1]))
    with pytest.raises(BindingError):
        registry.bind("svc", Group("b", [2]))
    registry.bind("svc", Group("b", [2]), replace=True)
    assert registry.lookup("svc").name == "b"


def test_binding_lookup_unknown_raises():
    registry = BindingRegistry()
    with pytest.raises(BindingError):
        registry.lookup("ghost")
    with pytest.raises(BindingError):
        registry.unbind("ghost")


# ----------------------------------------------------------------------
# End-to-end through generated stubs
# ----------------------------------------------------------------------

KV_INTERFACE = ServiceInterface("kv", ["put", "get", "keys"])


def stub_cluster(spec=None):
    spec = spec or ServiceSpec(bounded=5.0, unique=True)
    return ServiceCluster(spec, lambda pid: MarshallingApp(KVStore()),
                          n_servers=3, default_link=FAST)


def test_stub_roundtrip():
    cluster = stub_cluster()
    outcome = {}

    async def scenario():
        stub = client_stub(KV_INTERFACE, cluster.grpc(cluster.client),
                           cluster.group)
        await stub.put(key="city", value="tucson")
        outcome["value"] = await stub.get(key="city")
        outcome["keys"] = await stub.keys()

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    assert outcome["value"] == "tucson"
    assert outcome["keys"] == ["city"]


def test_stub_raises_rpc_timeout():
    cluster = stub_cluster(ServiceSpec(bounded=0.3, unique=True))
    for pid in cluster.server_pids:
        cluster.crash(pid)
    caught = {}

    async def scenario():
        stub = client_stub(KV_INTERFACE, cluster.grpc(cluster.client),
                           cluster.group)
        with pytest.raises(RPCTimeout):
            await stub.get(key="any")
        caught["ok"] = True

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter())
    assert caught["ok"]


def test_unmarshalled_collation_with_stub_replies():
    from repro.apps import ComputeApp

    iface = ServiceInterface("compute", ["measure"])
    spec = ServiceSpec(bounded=5.0, acceptance=3,
                       collation=unmarshalled_collation(average, None))
    cluster = ServiceCluster(
        spec, lambda pid: MarshallingApp(ComputeApp(pid * 10.0)),
        n_servers=3, default_link=FAST)
    outcome = {}

    async def scenario():
        stub = client_stub(iface, cluster.grpc(cluster.client),
                           cluster.group)
        outcome["avg"] = await stub.measure()

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    mean, count = outcome["avg"]
    assert mean == pytest.approx(20.0)
    assert count == 3
