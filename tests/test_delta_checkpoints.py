"""Delta checkpointing (the paper's proposed optimization), unit + e2e."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import BankApp, KVStore
from repro.core.config import at_most_once
from repro.core.microprotocols.atomic_execution import (
    AtomicExecution,
    apply_delta,
    state_delta,
)

FAST = LinkSpec(delay=0.005, jitter=0.0)


# ----------------------------------------------------------------------
# The diff/apply pair (pure functions)
# ----------------------------------------------------------------------

def test_state_delta_roundtrip_flat():
    old = {"a": 1, "b": 2, "c": 3}
    new = {"a": 1, "b": 20, "d": 4}
    delta = state_delta(old, new)
    assert set(delta) == {"b", "c", "d"}
    state = dict(old)
    apply_delta(state, delta)
    assert state == new


def test_state_delta_roundtrip_nested():
    old = {"data": {"x": 1, "y": 2}, "meta": "v1"}
    new = {"data": {"x": 1, "y": 3, "z": 9}, "meta": "v1"}
    delta = state_delta(old, new)
    assert "meta" not in delta        # unchanged values excluded
    state = {"data": {"x": 1, "y": 2}, "meta": "v1"}
    apply_delta(state, delta)
    assert state == new


def test_state_delta_identical_states_empty():
    state = {"a": {"b": [1, 2]}}
    assert state_delta(state, dict(state)) == {}


def test_delta_much_smaller_than_state_for_small_changes():
    import sys
    old = {f"k{i}": "x" * 50 for i in range(500)}
    new = dict(old)
    new["k3"] = "changed"
    delta = state_delta(old, new)
    assert len(delta) == 1


def test_atomic_execution_rejects_bad_compact_every():
    with pytest.raises(ValueError):
        AtomicExecution(delta=True, compact_every=0)


# ----------------------------------------------------------------------
# End-to-end: delta mode gives the same atomicity guarantee
# ----------------------------------------------------------------------

def bank_factory(pid):
    return BankApp({"alice": 100, "bob": 100}, transfer_delay=0.05)


def delta_spec(**overrides):
    return at_most_once(acceptance=1, bounded=1.0,
                        atomic_delta=True,
                        atomic_compact_every=4).with_(**overrides)


def test_delta_mode_rolls_back_crash_mid_transfer():
    cluster = ServiceCluster(delta_spec(), bank_factory, n_servers=1,
                             default_link=FAST)
    cluster.runtime.call_later(0.035, lambda: cluster.crash(1))
    result = cluster.call_and_run(
        "transfer", {"src": "alice", "dst": "bob", "amount": 30})
    assert result.status is Status.TIMEOUT
    cluster.recover(1)
    cluster.settle(0.2)
    stable = cluster.node(1).stable
    assert stable.get("acct:alice") == 100
    assert stable.get("acct:bob") == 100


def test_delta_mode_replays_chain_on_recovery():
    cluster = ServiceCluster(delta_spec(bounded=5.0), bank_factory,
                             n_servers=1, default_link=FAST)
    # Three completed transfers (chain of deltas), then a crash.
    for _ in range(3):
        result = cluster.call_and_run(
            "transfer", {"src": "alice", "dst": "bob", "amount": 10},
            extra_time=0.3)
        assert result.ok
    atomic = cluster.grpc(1).micro("Atomic_Execution")
    assert atomic.delta_chain_length == 3   # compact_every=4 not yet hit
    cluster.crash(1)
    cluster.recover(1)
    cluster.settle(0.2)
    result = cluster.call_and_run("balance", {"account": "bob"},
                                  extra_time=0.3)
    assert result.args == 130               # all three replayed


def test_delta_chain_compacts():
    cluster = ServiceCluster(delta_spec(bounded=5.0), bank_factory,
                             n_servers=1, default_link=FAST)
    for _ in range(5):
        assert cluster.call_and_run(
            "transfer", {"src": "alice", "dst": "bob", "amount": 1},
            extra_time=0.2).ok
    atomic = cluster.grpc(1).micro("Atomic_Execution")
    # 4 deltas triggered compaction; the 5th starts a new chain.
    assert atomic.delta_chain_length == 1


def test_delta_and_whole_state_agree():
    def run(delta):
        spec = at_most_once(acceptance=1, bounded=5.0,
                            atomic_delta=delta)
        cluster = ServiceCluster(
            spec, lambda pid: KVStore(keep_log=False), n_servers=1,
            seed=4, default_link=FAST)
        for i in range(6):
            cluster.call_and_run("put", {"key": f"k{i % 2}", "value": i},
                                 extra_time=0.2)
        cluster.crash(1)
        cluster.recover(1)
        cluster.settle(0.2)
        result = cluster.call_and_run("snapshot", {}, extra_time=0.2)
        return result.args

    assert run(delta=False) == run(delta=True)


def test_delta_writes_less_checkpoint_data():
    """With a large pre-populated state, delta checkpoints touch far
    fewer stable cells' worth of data (proxy: checkpoint count equal,
    but measured via stable write sizes through a size probe)."""
    import sys

    def run(delta):
        spec = at_most_once(acceptance=1, bounded=5.0,
                            atomic_delta=delta, atomic_compact_every=100)
        cluster = ServiceCluster(
            spec, lambda pid: KVStore(keep_log=False), n_servers=1,
            default_link=FAST)
        app = cluster.app(1)
        for i in range(300):
            app.data[f"pre-{i}"] = "x" * 40
        sizes = []
        stable = cluster.node(1).stable
        original_write = stable.write

        def measuring_write(value):
            sizes.append(sys.getsizeof(str(value)))
            return original_write(value)

        stable.write = measuring_write
        for i in range(5):
            cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                 extra_time=0.2)
        return sum(sizes)

    whole = run(delta=False)
    delta = run(delta=True)
    assert delta < whole / 5
