"""Suite-wide pytest wiring for the observatory.

Two pieces:

* **Flight-recorder dumps on failure** — a ``pytest_runtest_makereport``
  hookwrapper walks :func:`repro.obs.flight.live_recorders` whenever a
  test's call phase fails and attaches each non-empty tape to the
  report, so the control-plane history leading up to the failure ships
  with the failure output (``-ra`` / CI logs) without any per-test
  plumbing.
* **Marshal-hook hygiene** — the stub marshaller's profiler hook is a
  process-global (:func:`repro.stubs.marshal.install_profiler`); an
  autouse fixture detaches it after every test so an observatory leaked
  by one test can never bill marshalling to another.
"""

import importlib

import pytest


@pytest.fixture(autouse=True)
def _detach_marshal_profiler():
    yield
    # importlib, not ``from repro.stubs import marshal``: the package
    # re-exports the marshal *function* under that name.
    marshal = importlib.import_module("repro.stubs.marshal")
    marshal.install_profiler(None)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_makereport(item, call):
    outcome = yield
    report = outcome.get_result()
    if report.when != "call" or not report.failed:
        return
    from repro.obs.flight import live_recorders
    for index, recorder in enumerate(live_recorders()):
        tape = recorder.format_dump()
        if tape:
            report.sections.append(
                (f"flight recorder #{index} "
                 f"({len(recorder)}/{recorder.capacity} events)", tape))
