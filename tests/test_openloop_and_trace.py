"""Open-loop workload driver and the network trace accessors."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.bench import OpenLoopWorkload, read_only_workload
from repro.net import NetworkFabric, Node
from repro.runtime import SimRuntime

FAST = LinkSpec(delay=0.002, jitter=0.001)


def test_open_loop_offers_poisson_arrivals():
    spec = ServiceSpec(acceptance=1, bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, seed=1,
                             default_link=FAST)
    workload = OpenLoopWorkload(lambda i: read_only_workload(seed=i),
                                rate=100.0, duration=2.0, seed=3)
    result = workload.run(cluster, drain_time=1.0)
    # ~200 expected arrivals; Poisson spread tolerated generously.
    assert 140 < result.calls < 260
    assert result.incomplete == 0
    assert result.ok_ratio == 1.0
    assert result.latency_stats().mean < 0.05


def test_open_loop_overload_leaves_backlog_without_drain():
    spec = ServiceSpec(acceptance=1, bounded=0.0, execution="serial")
    cluster = ServiceCluster(
        spec, lambda pid: KVStore(op_delay=0.02, keep_log=False),
        n_servers=1, seed=2, default_link=FAST)
    # Capacity ~50/s, offered 150/s, no drain: backlog must be visible.
    workload = OpenLoopWorkload(lambda i: read_only_workload(seed=i),
                                rate=150.0, duration=2.0, seed=4)
    result = workload.run(cluster, drain_time=0.0)
    assert result.incomplete > 20
    cluster.shutdown()   # cancel the deliberate backlog cleanly


def test_open_loop_parameter_validation():
    with pytest.raises(ValueError):
        OpenLoopWorkload(lambda i: read_only_workload(), rate=0.0,
                         duration=1.0)
    with pytest.raises(ValueError):
        OpenLoopWorkload(lambda i: read_only_workload(), rate=1.0,
                         duration=0.0)


def test_open_loop_is_deterministic():
    def run():
        spec = ServiceSpec(acceptance=1, bounded=0.0)
        cluster = ServiceCluster(spec, KVStore, n_servers=1, seed=5,
                                 default_link=FAST)
        workload = OpenLoopWorkload(
            lambda i: read_only_workload(seed=i), rate=80.0,
            duration=1.0, seed=6)
        return workload.run(cluster).latencies

    assert run() == run()


# ----------------------------------------------------------------------
# Network trace accessors
# ----------------------------------------------------------------------

def test_trace_accessors_and_counters_only_mode():
    rt = SimRuntime()
    fabric = NetworkFabric(rt)
    for pid in (1, 2):
        node = Node(pid, rt, fabric)
        node.start()
    fabric.send(1, 2, "a")
    fabric.send(2, 1, "b")
    rt.run_for(1.0)
    trace = fabric.trace
    assert trace.sends == 2
    assert trace.deliveries == 2
    assert len(trace.of_kind("send")) == 2
    assert [e.detail for e in trace.between(src=1)] == ["a", "a"]
    assert [e.detail for e in trace.between(dst=1) if
            e.kind == "deliver"] == ["b"]

    trace.clear()
    assert trace.sends == 0 and trace.events == []

    trace.keep_events = False
    fabric.send(1, 2, "c")
    rt.run_for(1.0)
    assert trace.sends == 1
    assert trace.events == []       # counters only
