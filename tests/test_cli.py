"""The ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "RPC_Main" in out
    assert "micro-protocol catalog" in out
    assert "causal" in out   # extension choices are listed


def test_enumerate(capsys):
    assert main(["enumerate"]) == 0
    out = capsys.readouterr().out
    assert "198" in out and "186" in out and "11" in out


def test_demo(capsys):
    assert main(["demo", "--servers", "2", "--calls", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") >= 2
    assert "keys: ['k0', 'k1']" in out


@pytest.mark.parametrize("ordering", ["none", "total"])
def test_trace(capsys, ordering):
    assert main(["trace", "--ordering", ordering]) == 0
    out = capsys.readouterr().out
    assert "issued" in out and "executed" in out
    assert "status OK" in out
    if ordering == "total":
        assert "received-Order" in out


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
