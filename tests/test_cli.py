"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "RPC_Main" in out
    assert "micro-protocol catalog" in out
    assert "causal" in out   # extension choices are listed


def test_enumerate(capsys):
    assert main(["enumerate"]) == 0
    out = capsys.readouterr().out
    assert "198" in out and "186" in out and "11" in out


def test_demo(capsys):
    assert main(["demo", "--servers", "2", "--calls", "2"]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") >= 2
    assert "keys: ['k0', 'k1']" in out


@pytest.mark.parametrize("ordering", ["none", "total"])
def test_trace(capsys, ordering):
    assert main(["trace", "--ordering", ordering]) == 0
    out = capsys.readouterr().out
    assert "issued" in out and "executed" in out
    assert "status OK" in out
    if ordering == "total":
        assert "received-Order" in out


def test_trace_config_emits_jsonl(capsys):
    assert main(["trace", "read-optimized", "--calls", "1"]) == 0
    out = capsys.readouterr().out
    lines = [json.loads(line) for line in out.splitlines()]
    spans = [l for l in lines if l["t"] == "span"]
    roots = [l for l in spans if l["parent"] is None]
    assert len(roots) == 1 and roots[0]["name"] == "rpc.call"
    # The tree reconstructs: every parent id exists.
    ids = {l["id"] for l in spans}
    assert all(l["parent"] in ids for l in spans if l["parent"] is not None)
    assert any(l["name"] == "server.execute" for l in spans)
    # Handler timings and the absorbed network counters ride along.
    assert any(l["t"] == "event" and l["kind"] == "handler" for l in lines)
    metrics = {l["name"] for l in lines if l["t"] == "metric"}
    assert "net.send" in metrics
    assert any(m.startswith("handler.") for m in metrics)
    assert any(m.startswith("kernel.") for m in metrics)


def test_trace_config_flame(capsys):
    assert main(["trace", "exactly-once", "--calls", "1", "--flame"]) == 0
    out = capsys.readouterr().out
    assert "rpc.call" in out and "server.execute" in out
    assert "RPC_Main" in out  # per-handler lines carry the owner


def test_trace_rejects_unknown_config():
    with pytest.raises(SystemExit):
        main(["trace", "no-such-config"])


def test_no_command_prints_help(capsys):
    assert main([]) == 2
    assert "usage" in capsys.readouterr().out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])
