"""Sharding a keyspace over independently-configured services."""

import zlib

import pytest

from repro import Deployment, read_optimized, replicated_state_machine
from repro.apps import (
    KVStore,
    RingRouter,
    ShardedKV,
    ShardRouter,
    build_sharded_kv,
)
from repro.errors import ReproError
from repro.obs import MetricsRegistry


# ---------------------------------------------------------------------------
# ShardRouter
# ---------------------------------------------------------------------------


def test_router_is_deterministic_and_total():
    router = ShardRouter(["a", "b", "c"])
    keys = [f"k{i}" for i in range(100)]
    first = [router.route(k) for k in keys]
    second = [router.route(k) for k in keys]
    assert first == second
    assert set(first) <= {"a", "b", "c"}
    # CRC-32 modulo the list — independent of Python hash salting.
    assert router.shard_index("k0") == zlib.crc32(b"k0") % 3


def test_router_spreads_keys():
    router = ShardRouter([f"s{i}" for i in range(4)])
    buckets = router.partition(f"key-{i}" for i in range(400))
    assert sum(len(v) for v in buckets.values()) == 400
    assert all(len(v) > 0 for v in buckets.values())


def test_router_partition_groups_by_owner():
    router = ShardRouter(["a", "b"])
    buckets = router.partition(["x", "y", "z"])
    for name, keys in buckets.items():
        for key in keys:
            assert router.route(key) == name


def test_router_order_is_part_of_the_function():
    # Same names, different order: the index is stable, the name is not,
    # which is why clients must build routers from the same sequence.
    r1, r2 = ShardRouter(["a", "b"]), ShardRouter(["b", "a"])
    idx = r1.shard_index("x")
    assert r2.shard_index("x") == idx
    assert r1.route("x") == r1.services[idx]
    assert r2.route("x") == r2.services[idx]


def test_router_rejects_empty():
    with pytest.raises(ReproError):
        ShardRouter([])


def test_router_counts_lookups_and_per_shard_routing():
    metrics = MetricsRegistry()
    router = ShardRouter(["a", "b"], metrics=metrics)
    for i in range(10):
        router.route(f"k{i}")
    assert metrics.value("placement.router.lookups") == 10
    per_shard = [metrics.value(f"placement.router.keys_routed.{name}")
                 for name in ("a", "b")]
    assert sum(per_shard) == 10
    assert all(count > 0 for count in per_shard)


# ---------------------------------------------------------------------------
# RingRouter: the consistent-hash drop-in
# ---------------------------------------------------------------------------


def test_ring_router_same_surface_different_placement():
    ring = RingRouter(["a", "b", "c"], seed=5)
    keys = [f"k{i}" for i in range(100)]
    assert [ring.route(k) for k in keys] == [ring.route(k) for k in keys]
    for key in keys:
        assert ring.route(key) == ring.services[ring.shard_index(key)]
    buckets = ring.partition(keys)
    assert sum(len(v) for v in buckets.values()) == 100


def test_partition_does_not_count_lookup_metrics():
    # Bulk planning must not inflate the per-call routing counters that
    # the rebalancing benchmarks assert on.
    for router in (ShardRouter(["a", "b"], metrics=MetricsRegistry()),
                   RingRouter(["a", "b"], metrics=MetricsRegistry())):
        router.partition([f"k{i}" for i in range(20)])
        assert router._lookups.value == 0
        router.route("k0")
        assert router._lookups.value == 1


def test_ring_router_shard_index_stays_consistent_after_resize():
    router = RingRouter(["s0", "s1", "s2"], seed=3)
    router.add("s3")
    router.remove("s1")
    for key in (f"k{i}" for i in range(50)):
        assert router.services[router.shard_index(key)] == \
            router.route(key)


def test_ring_router_resize_moves_few_keys():
    metrics = MetricsRegistry()
    ring = RingRouter(["a", "b", "c"], seed=5, metrics=metrics)
    keys = [f"k{i}" for i in range(200)]
    before = {k: ring.route(k) for k in keys}

    ring.add("d")
    after = {k: ring.route(k) for k in keys}
    moved = [k for k in keys if before[k] != after[k]]
    # Every moved key went to the newcomer, and only O(K/N) of them did
    # — the modulo-N baseline would remap ~3/4 of the keyspace here.
    assert all(after[k] == "d" for k in moved)
    assert 0 < len(moved) <= len(keys) * 0.45
    # The newcomer's routing counter was registered on the fly.
    assert metrics.value("placement.router.keys_routed.d") > 0

    ring.remove("d")
    assert {k: ring.route(k) for k in keys} == before


# ---------------------------------------------------------------------------
# ShardedKV over a live deployment
# ---------------------------------------------------------------------------


def test_sharded_kv_end_to_end():
    dep = Deployment(seed=11)
    kv = build_sharded_kv(dep, 3, spec=read_optimized(2.0),
                          servers_per_shard=1)
    writes = {f"key-{i}": i for i in range(12)}

    async def scenario():
        for key, value in writes.items():
            assert (await kv.put(key, value)).ok
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value
        assert await kv.keys() == sorted(writes)
        assert (await kv.delete("key-0")).ok
        assert (await kv.get("key-0")).args is None

    dep.run_scenario(scenario())

    # Each key lives only on its owning shard.
    for name in kv.router.services:
        svc = dep.services[name]
        stored = set(svc.app(svc.server_pids[0]).data)
        expected = {k for k in writes if kv.shard_of(k) == name} - {"key-0"}
        assert stored == expected


def test_sharded_kv_per_shard_specs():
    dep = Deployment(seed=12)
    kv = build_sharded_kv(
        dep, 2,
        specs=[replicated_state_machine(2), read_optimized(2.0)],
        servers_per_shard=2)
    assert dep.services["shard-0"].spec.ordering == "total"
    assert dep.services["shard-1"].spec.ordering == "none"

    async def scenario():
        for i in range(8):
            assert (await kv.put(f"k{i}", i)).ok

    dep.run_scenario(scenario())
    # The totally-ordered shard replicated every one of its writes.
    strict = dep.services["shard-0"]
    assert strict.app(strict.server_pids[0]).data == \
        strict.app(strict.server_pids[1]).data


def test_sharded_kv_shares_client_nodes_across_shards():
    dep = Deployment(seed=13)
    kv = build_sharded_kv(dep, 3, spec=read_optimized(2.0), clients=2)
    pids = dep.services["shard-0"].client_pids
    for name in kv.router.services:
        assert dep.services[name].client_pids == pids
    # A second view over the same router works from the other client.
    other = ShardedKV(dep, pids[1], kv.router)

    async def scenario():
        assert (await kv.put("a", 1)).ok
        result = await other.get("a")
        assert result.ok and result.args == 1

    dep.run_scenario(scenario())


def test_build_sharded_kv_validates_arguments():
    dep = Deployment()
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 0)
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 3, specs=[read_optimized()])
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 3, router="rendezvous")


def test_build_sharded_kv_router_selection():
    dep = Deployment(seed=14)
    kv = build_sharded_kv(dep, 2, spec=read_optimized(2.0))
    assert isinstance(kv.router, RingRouter)          # ring is the default

    dep2 = Deployment(seed=14)
    legacy = build_sharded_kv(dep2, 2, spec=read_optimized(2.0),
                              router="modulo")
    assert isinstance(legacy.router, ShardRouter)
    assert not isinstance(legacy.router, RingRouter)

    async def scenario():
        assert (await legacy.put("x", 1)).ok
        result = await legacy.get("x")
        assert result.ok and result.args == 1

    dep2.run_scenario(scenario())
    # Both router kinds feed the shared lookup counter.
    assert dep2.metrics.value("placement.router.lookups") >= 2
