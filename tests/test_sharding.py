"""Sharding a keyspace over independently-configured services."""

import zlib

import pytest

from repro import Deployment, read_optimized, replicated_state_machine
from repro.apps import KVStore, ShardedKV, ShardRouter, build_sharded_kv
from repro.errors import ReproError


# ---------------------------------------------------------------------------
# ShardRouter
# ---------------------------------------------------------------------------


def test_router_is_deterministic_and_total():
    router = ShardRouter(["a", "b", "c"])
    keys = [f"k{i}" for i in range(100)]
    first = [router.route(k) for k in keys]
    second = [router.route(k) for k in keys]
    assert first == second
    assert set(first) <= {"a", "b", "c"}
    # CRC-32 modulo the list — independent of Python hash salting.
    assert router.shard_index("k0") == zlib.crc32(b"k0") % 3


def test_router_spreads_keys():
    router = ShardRouter([f"s{i}" for i in range(4)])
    buckets = router.partition(f"key-{i}" for i in range(400))
    assert sum(len(v) for v in buckets.values()) == 400
    assert all(len(v) > 0 for v in buckets.values())


def test_router_partition_groups_by_owner():
    router = ShardRouter(["a", "b"])
    buckets = router.partition(["x", "y", "z"])
    for name, keys in buckets.items():
        for key in keys:
            assert router.route(key) == name


def test_router_order_is_part_of_the_function():
    # Same names, different order: the index is stable, the name is not,
    # which is why clients must build routers from the same sequence.
    r1, r2 = ShardRouter(["a", "b"]), ShardRouter(["b", "a"])
    idx = r1.shard_index("x")
    assert r2.shard_index("x") == idx
    assert r1.route("x") == r1.services[idx]
    assert r2.route("x") == r2.services[idx]


def test_router_rejects_empty():
    with pytest.raises(ReproError):
        ShardRouter([])


# ---------------------------------------------------------------------------
# ShardedKV over a live deployment
# ---------------------------------------------------------------------------


def test_sharded_kv_end_to_end():
    dep = Deployment(seed=11)
    kv = build_sharded_kv(dep, 3, spec=read_optimized(2.0),
                          servers_per_shard=1)
    writes = {f"key-{i}": i for i in range(12)}

    async def scenario():
        for key, value in writes.items():
            assert (await kv.put(key, value)).ok
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value
        assert await kv.keys() == sorted(writes)
        assert (await kv.delete("key-0")).ok
        assert (await kv.get("key-0")).args is None

    dep.run_scenario(scenario())

    # Each key lives only on its owning shard.
    for name in kv.router.services:
        svc = dep.services[name]
        stored = set(svc.app(svc.server_pids[0]).data)
        expected = {k for k in writes if kv.shard_of(k) == name} - {"key-0"}
        assert stored == expected


def test_sharded_kv_per_shard_specs():
    dep = Deployment(seed=12)
    kv = build_sharded_kv(
        dep, 2,
        specs=[replicated_state_machine(2), read_optimized(2.0)],
        servers_per_shard=2)
    assert dep.services["shard-0"].spec.ordering == "total"
    assert dep.services["shard-1"].spec.ordering == "none"

    async def scenario():
        for i in range(8):
            assert (await kv.put(f"k{i}", i)).ok

    dep.run_scenario(scenario())
    # The totally-ordered shard replicated every one of its writes.
    strict = dep.services["shard-0"]
    assert strict.app(strict.server_pids[0]).data == \
        strict.app(strict.server_pids[1]).data


def test_sharded_kv_shares_client_nodes_across_shards():
    dep = Deployment(seed=13)
    kv = build_sharded_kv(dep, 3, spec=read_optimized(2.0), clients=2)
    pids = dep.services["shard-0"].client_pids
    for name in kv.router.services:
        assert dep.services[name].client_pids == pids
    # A second view over the same router works from the other client.
    other = ShardedKV(dep, pids[1], kv.router)

    async def scenario():
        assert (await kv.put("a", 1)).ok
        result = await other.get("a")
        assert result.ok and result.args == 1

    dep.run_scenario(scenario())


def test_build_sharded_kv_validates_arguments():
    dep = Deployment()
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 0)
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 3, specs=[read_optimized()])
