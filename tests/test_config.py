"""Configuration validation and the Figure-4 enumeration."""

import pytest

from repro.core.config import (
    ServiceSpec,
    at_least_once,
    at_most_once,
    exactly_once,
    read_optimized,
    replicated_state_machine,
    validate,
)
from repro.core.enumerate import (
    enumerate_services,
    figure4_choice_groups,
    figure4_edges,
    iter_cluster_combinations,
)
from repro.errors import ConfigurationError, DependencyError


# ----------------------------------------------------------------------
# Validation (Figure 4 dependencies)
# ----------------------------------------------------------------------

def test_default_spec_is_valid():
    validate(ServiceSpec())


def test_unknown_choices_rejected():
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(call="telepathic"))
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(orphans="adopt"))
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(execution="parallel"))
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(ordering="alphabetical"))


def test_unique_requires_reliable():
    with pytest.raises(DependencyError):
        validate(ServiceSpec(unique=True, reliable=False))


def test_fifo_requires_reliable():
    with pytest.raises(DependencyError):
        validate(ServiceSpec(ordering="fifo", reliable=False))


def test_total_requires_unique_reliable_unbounded():
    with pytest.raises(DependencyError):
        validate(ServiceSpec(ordering="total", unique=False,
                             reliable=True))
    with pytest.raises(DependencyError):
        validate(ServiceSpec(ordering="total", unique=True,
                             reliable=False))
    with pytest.raises(DependencyError):
        validate(ServiceSpec(ordering="total", unique=True,
                             reliable=True, bounded=1.0))
    validate(ServiceSpec(ordering="total", unique=True, reliable=True))


def test_interference_avoidance_requires_reliable():
    with pytest.raises(DependencyError):
        validate(ServiceSpec(orphans="avoid", reliable=False))
    validate(ServiceSpec(orphans="terminate", reliable=False))


def test_bad_numeric_parameters_rejected():
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(bounded=-1.0))
    with pytest.raises(ConfigurationError):
        validate(ServiceSpec(acceptance=0))


def test_build_composes_expected_microprotocols():
    names = ServiceSpec().micro_protocol_names()
    assert names == ["RPC_Main", "Synchronous_Call",
                     "Reliable_Communication", "Collation", "Acceptance"]

    names = ServiceSpec(
        call="asynchronous", unique=True, execution="atomic",
        ordering="total", orphans="terminate").micro_protocol_names()
    assert names == ["RPC_Main", "Asynchronous_Call",
                     "Reliable_Communication", "Unique_Execution",
                     "Serial_Execution", "Atomic_Execution", "Total_Order",
                     "Terminate_Orphan", "Collation", "Acceptance"]


def test_build_returns_fresh_instances():
    spec = ServiceSpec()
    first = spec.build()
    second = spec.build()
    assert first[0] is not second[0]


def test_presets_have_documented_semantics():
    assert at_least_once().failure_semantics == "at least once"
    assert exactly_once().failure_semantics == "exactly once"
    assert at_most_once().failure_semantics == "at most once"
    ro = read_optimized(timebound=2.5)
    assert ro.acceptance == 1 and ro.bounded == 2.5 and ro.reliable
    rsm = replicated_state_machine(5)
    assert rsm.ordering == "total" and rsm.acceptance == 5
    validate(rsm)


def test_section5_composition_matches_paper():
    # protocol RPC_Service = RPC_main || Synchronous_Call ||
    #   Reliable_Communication(timeout) || Bounded_Termination(1.0) ||
    #   Collation(id, 0) || Acceptance(1)
    names = read_optimized(timebound=1.0).micro_protocol_names()
    assert names == ["RPC_Main", "Synchronous_Call",
                     "Reliable_Communication", "Bounded_Termination",
                     "Collation", "Acceptance"]


def test_with_is_non_destructive():
    base = ServiceSpec()
    changed = base.with_(unique=True)
    assert base.unique is False and changed.unique is True


# ----------------------------------------------------------------------
# Enumeration (the paper's 198)
# ----------------------------------------------------------------------

def test_cluster_combinations_count_is_11():
    assert len(list(iter_cluster_combinations())) == 11


def test_paper_count_is_198():
    result = enumerate_services()
    assert result.call_choices == 2
    assert result.orphan_choices == 3
    assert result.execution_choices == 3
    assert result.cluster_choices == 11
    assert result.paper_count == 198


def test_strict_count_enforces_every_figure4_edge():
    result = enumerate_services()
    assert result.strict_count == 186   # 198 - 12 (avoid x unreliable)
    # Every strict spec must validate and be buildable, and always
    # contains the minimal functional set (Main, call, Collation,
    # Acceptance).
    for spec in result.strict_specs[:20]:
        assert len(spec.build()) >= 4


def test_strict_specs_are_unique():
    result = enumerate_services()
    assert len(set(result.strict_specs)) == result.strict_count


def test_figure4_graph_shape():
    edges = figure4_edges()
    assert ("Total_Order", "Unique_Execution") in edges
    assert ("Atomic_Execution", "Serial_Execution") in edges
    groups = figure4_choice_groups()
    assert ("Synchronous_Call", "Asynchronous_Call") in groups
