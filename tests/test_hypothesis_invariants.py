"""Property-based tests (hypothesis) on core invariants.

Simulation-heavy properties use few, small examples; pure-data
properties (dispatch order, spec validation) run at full strength.
"""

import statistics

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.core.config import validate
from repro.core.events import EventBus
from repro.core.microprotocols import average
from repro.errors import ConfigurationError
from repro.runtime import SimRuntime
from repro.sim import Kernel, Semaphore, sleep, spawn

SIM_SETTINGS = settings(max_examples=10, deadline=None,
                        suppress_health_check=[HealthCheck.too_slow,
                                               HealthCheck.data_too_large])


# ----------------------------------------------------------------------
# Kernel determinism and clock monotonicity
# ----------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=5.0), min_size=1,
                max_size=12))
def test_kernel_schedule_is_deterministic(delays):
    def run_once():
        kernel = Kernel()
        trace = []

        async def worker(tag, delay):
            await sleep(delay)
            trace.append((tag, kernel.now))

        async def main():
            tasks = [await spawn(worker(i, d))
                     for i, d in enumerate(delays)]
            for t in tasks:
                await t.join()

        kernel.run(main())
        return trace

    first = run_once()
    assert first == run_once()
    times = [t for _, t in first]
    assert times == sorted(times)            # clock monotone
    assert all(t >= 0 for t in times)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=3.0),
                          st.integers(0, 100)),
                min_size=1, max_size=10))
def test_call_later_fires_in_time_order_with_fifo_ties(entries):
    kernel = Kernel()
    fired = []
    for i, (delay, _) in enumerate(entries):
        kernel.call_later(delay, lambda i=i, d=delay: fired.append((d, i)))
    kernel.run_until_idle()
    # Sorted by time; equal times preserve registration order.
    assert fired == sorted(fired, key=lambda pair: (pair[0],))
    for (d1, i1), (d2, i2) in zip(fired, fired[1:]):
        if d1 == d2:
            assert i1 < i2


# ----------------------------------------------------------------------
# Semaphore conservation
# ----------------------------------------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.integers(0, 5),
       st.lists(st.sampled_from(["acquire", "release"]), max_size=30))
def test_semaphore_conserves_permits(initial, script):
    kernel = Kernel()
    outcome = {}

    async def main():
        sem = Semaphore(initial)
        acquired = 0
        released = 0
        for action in script:
            if action == "acquire":
                if sem.value > 0:   # only non-blocking acquires here
                    await sem.acquire()
                    acquired += 1
            else:
                sem.release()
                released += 1
        outcome["value"] = sem.value
        outcome["expected"] = initial - acquired + released

    kernel.run(main())
    assert outcome["value"] == outcome["expected"]
    assert outcome["value"] >= 0


# ----------------------------------------------------------------------
# Event dispatch ordering
# ----------------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(st.lists(st.one_of(st.none(), st.floats(min_value=-10,
                                               max_value=10)),
                min_size=1, max_size=15))
def test_handlers_always_run_in_priority_then_seq_order(priorities):
    rt = SimRuntime()
    bus = EventBus(rt)
    ran = []
    expected = []

    for seq, priority in enumerate(priorities):
        async def handler(s=seq):
            ran.append(s)
        bus.register("E", handler, priority)
        effective = priority if priority is not None else float("inf")
        expected.append((effective, seq))

    rt.run(bus.trigger("E"))
    assert ran == [seq for _, seq in sorted(expected)]


# ----------------------------------------------------------------------
# Spec validation mirrors the declared dependency predicate
# ----------------------------------------------------------------------

spec_strategy = st.builds(
    ServiceSpec,
    call=st.sampled_from(["synchronous", "asynchronous"]),
    reliable=st.booleans(),
    bounded=st.sampled_from([0.0, 1.0]),
    unique=st.booleans(),
    execution=st.sampled_from(["none", "serial", "atomic"]),
    ordering=st.sampled_from(["none", "fifo", "total"]),
    orphans=st.sampled_from(["none", "avoid", "terminate"]),
    acceptance=st.integers(1, 5),
)


def legal(spec: ServiceSpec) -> bool:
    if spec.unique and not spec.reliable:
        return False
    if spec.ordering == "fifo" and not spec.reliable:
        return False
    if spec.ordering == "total" and not (spec.unique and spec.reliable
                                         and not spec.bounded):
        return False
    if spec.orphans == "avoid" and not spec.reliable:
        return False
    return True


@settings(max_examples=300, deadline=None)
@given(spec_strategy)
def test_validate_matches_dependency_predicate(spec):
    if legal(spec):
        validate(spec)
        micros = spec.build()
        names = [m.name for m in micros]
        assert names[0] == "RPC_Main"
        assert names.count("Synchronous_Call") \
            + names.count("Asynchronous_Call") == 1
        assert "Collation" in names and "Acceptance" in names
        assert ("Serial_Execution" in names) \
            == (spec.execution in ("serial", "atomic"))
        assert ("Atomic_Execution" in names) == (spec.execution == "atomic")
    else:
        with pytest.raises(ConfigurationError):
            validate(spec)


# ----------------------------------------------------------------------
# Collation math
# ----------------------------------------------------------------------

@settings(max_examples=100, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=20))
def test_average_collator_equals_statistics_mean(values):
    acc = None
    for value in values:
        acc = average(acc, value)
    mean, count = acc
    assert count == len(values)
    assert mean == pytest.approx(statistics.fmean(values), rel=1e-9,
                                 abs=1e-6)


# ----------------------------------------------------------------------
# End-to-end simulation properties (few, small examples)
# ----------------------------------------------------------------------

@SIM_SETTINGS
@given(seed=st.integers(0, 10_000),
       loss=st.sampled_from([0.0, 0.1, 0.2]),
       n_servers=st.integers(1, 4))
def test_every_call_completes_under_loss(seed, loss, n_servers):
    spec = ServiceSpec(bounded=0.0, unique=True, acceptance=n_servers)
    cluster = ServiceCluster(
        spec, KVStore, n_servers=n_servers, seed=seed,
        default_link=LinkSpec(delay=0.01, jitter=0.005, loss=loss))
    for i in range(3):
        result = cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                      extra_time=0.3)
        assert result.ok


@SIM_SETTINGS
@given(seed=st.integers(0, 10_000))
def test_total_order_logs_identical_for_random_seeds(seed):
    spec = ServiceSpec(bounded=0.0, unique=True, ordering="total",
                       acceptance=3)
    cluster = ServiceCluster(
        spec, KVStore, n_servers=3, n_clients=2, seed=seed,
        default_link=LinkSpec(delay=0.01, jitter=0.05))

    async def scenario():
        tasks = []
        for ci, pid in enumerate(cluster.client_pids):
            for i in range(3):
                async def one(p=pid, k=f"c{ci}-{i}"):
                    await cluster.call(p, "put", {"key": k, "value": 0})
                tasks.append(cluster.spawn_client(pid, one()))
        for t in tasks:
            await cluster.runtime.join(t)

    cluster.run_scenario(scenario(), extra_time=2.0)
    logs = [tuple(k for _, k, _ in cluster.app(pid).apply_log)
            for pid in cluster.server_pids]
    assert len(logs[0]) == 6
    assert logs.count(logs[0]) == 3
