"""Unit tests for the simulation kernel: scheduling, time, cancellation."""

import pytest

from repro.errors import KernelError, TaskCancelled
from repro.sim import (
    Kernel,
    checkpoint_yield,
    current_kernel,
    current_task,
    sleep,
    spawn,
)


def test_run_returns_main_result():
    async def main():
        return 42

    assert Kernel().run(main()) == 42


def test_run_propagates_main_exception():
    async def main():
        raise ValueError("boom")

    with pytest.raises(ValueError, match="boom"):
        Kernel().run(main())


def test_virtual_time_advances_on_sleep():
    kernel = Kernel()

    async def main():
        assert kernel.now == 0.0
        await sleep(2.5)
        assert kernel.now == 2.5
        await sleep(0.5)
        return kernel.now

    assert kernel.run(main()) == 3.0


def test_sleep_zero_yields_but_keeps_time():
    kernel = Kernel()
    order = []

    async def child():
        order.append("child")

    async def main():
        await spawn(child())
        await sleep(0)
        order.append("main")

    kernel.run(main())
    assert order == ["child", "main"]
    assert kernel.now == 0.0


def test_spawn_runs_concurrently_in_fifo_order():
    kernel = Kernel()
    order = []

    async def worker(tag, delay):
        await sleep(delay)
        order.append(tag)

    async def main():
        t1 = await spawn(worker("a", 2.0))
        t2 = await spawn(worker("b", 1.0))
        await t1.join()
        await t2.join()

    kernel.run(main())
    assert order == ["b", "a"]


def test_join_returns_result_and_reraises():
    async def ok():
        return "fine"

    async def bad():
        raise RuntimeError("nope")

    async def main():
        t_ok = await spawn(ok())
        assert await t_ok.join() == "fine"
        t_bad = await spawn(bad())
        with pytest.raises(RuntimeError, match="nope"):
            await t_bad.join()

    Kernel().run(main())


def test_join_finished_task_returns_immediately():
    async def quick():
        return 7

    async def main():
        task = await spawn(quick())
        await sleep(1)
        assert task.done
        assert await task.join() == 7

    Kernel().run(main())


def test_cancel_sleeping_task():
    kernel = Kernel()
    witness = []

    async def sleeper():
        try:
            await sleep(100)
            witness.append("finished")
        except TaskCancelled:
            witness.append("cancelled")
            raise

    async def main():
        task = await spawn(sleeper())
        await sleep(1)
        assert task.cancel()
        with pytest.raises(TaskCancelled):
            await task.join()

    kernel.run(main())
    assert witness == ["cancelled"]
    assert kernel.now == 1.0  # did not wait out the 100s sleep


def test_cancel_finished_task_returns_false():
    async def quick():
        return 1

    async def main():
        task = await spawn(quick())
        await sleep(0)
        assert task.cancel() is False

    Kernel().run(main())


def test_self_cancel_is_rejected():
    async def main():
        me = await current_task()
        with pytest.raises(KernelError):
            me.cancel()

    Kernel().run(main())


def test_unjoined_failure_surfaces_in_strict_mode():
    async def bad():
        raise RuntimeError("lost")

    async def main():
        await spawn(bad())
        await sleep(1)

    with pytest.raises(KernelError, match="lost"):
        Kernel().run(bad_main := main())


def test_daemon_tasks_cancelled_at_shutdown():
    kernel = Kernel()
    beats = []

    async def heartbeat():
        while True:
            beats.append(kernel.now)
            await sleep(1.0)

    async def main():
        await spawn(heartbeat(), daemon=True)
        await sleep(3.5)

    kernel.run(main())
    assert beats == [0.0, 1.0, 2.0, 3.0]


def test_call_later_fires_in_order():
    kernel = Kernel()
    fired = []
    kernel.call_later(2.0, lambda: fired.append("b"))
    kernel.call_later(1.0, lambda: fired.append("a"))
    kernel.call_later(2.0, lambda: fired.append("c"))  # same time: FIFO
    kernel.run_until_idle()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 2.0


def test_call_later_cancel():
    kernel = Kernel()
    fired = []
    timer = kernel.call_later(1.0, lambda: fired.append("x"))
    timer.cancel()
    kernel.run_until_idle()
    assert fired == []


def test_run_until_advances_clock_even_when_idle():
    kernel = Kernel()
    kernel.run_until(5.0)
    assert kernel.now == 5.0
    kernel.run_for(2.0)
    assert kernel.now == 7.0


def test_run_until_does_not_fire_later_timers():
    kernel = Kernel()
    fired = []
    kernel.call_later(10.0, lambda: fired.append("late"))
    kernel.run_until(5.0)
    assert fired == []
    kernel.run_until(15.0)
    assert fired == ["late"]


def test_current_kernel_inside_and_outside():
    from repro.errors import NoCurrentTask

    with pytest.raises(NoCurrentTask):
        current_kernel()

    kernel = Kernel()

    async def main():
        assert current_kernel() is kernel

    kernel.run(main())


def test_checkpoint_yield_interleaves_equal_tasks():
    kernel = Kernel()
    order = []

    async def worker(tag):
        for i in range(3):
            order.append((tag, i))
            await checkpoint_yield()

    async def main():
        t1 = await spawn(worker("a"))
        t2 = await spawn(worker("b"))
        await t1.join()
        await t2.join()

    kernel.run(main())
    assert order == [("a", 0), ("b", 0), ("a", 1), ("b", 1),
                     ("a", 2), ("b", 2)]


def test_nested_run_is_rejected():
    kernel = Kernel()

    async def main():
        with pytest.raises(KernelError):
            kernel.run_until_idle()

    kernel.run(main())


def test_determinism_same_program_same_schedule():
    def run_once():
        kernel = Kernel()
        trace = []

        async def worker(tag, delay):
            await sleep(delay)
            trace.append((tag, kernel.now))

        async def main():
            for i in range(10):
                await spawn(worker(i, (i * 7) % 5 + 0.5))
            await sleep(10)

        kernel.run(main())
        return trace

    assert run_once() == run_once()
