"""Reply caching in the deployment plane.

The Unique Execution micro-protocol filters duplicate executions inside
one server group; the deployment-side :class:`ReplyCache` extends that
guarantee across reconfigurations: a retry naming its original call id
is answered from the per-service LRU without re-executing anywhere —
even after a rebind has pointed the service at servers that never saw
the original call.
"""

import pytest

from repro import Deployment, ReplyCache, replicated_state_machine
from repro.apps import KVStore
from repro.core.messages import CallResult, Status


def result(call_id, value="v"):
    return CallResult(call_id, Status.OK, value)


# ---------------------------------------------------------------------------
# The LRU itself
# ---------------------------------------------------------------------------


def test_cache_hit_miss_and_counters():
    cache = ReplyCache(capacity=4)
    assert cache.get(101, 1) is None
    cache.put(101, 1, result(1))
    assert cache.get(101, 1).args == "v"
    # Another client's id 1 is a different call entirely.
    assert cache.get(102, 1) is None
    assert (cache.hits, cache.misses) == (1, 2)


def test_cache_evicts_least_recently_used():
    cache = ReplyCache(capacity=2)
    cache.put(101, 1, result(1))
    cache.put(101, 2, result(2))
    cache.get(101, 1)                    # refresh 1; 2 is now oldest
    cache.put(101, 3, result(3))
    assert (101, 1) in cache
    assert (101, 2) not in cache
    assert (101, 3) in cache
    assert len(cache) == 2


def test_capacity_zero_disables_caching():
    cache = ReplyCache(capacity=0)
    cache.put(101, 1, result(1))
    assert len(cache) == 0
    assert cache.get(101, 1) is None
    with pytest.raises(ValueError):
        ReplyCache(capacity=-1)


# ---------------------------------------------------------------------------
# The deployment call path
# ---------------------------------------------------------------------------


def one_service_deployment(**kwargs):
    dep = Deployment(seed=41, **kwargs)
    dep.add_service("kv", replicated_state_machine(2), KVStore,
                    servers=[1, 2, 3], clients=[101])
    return dep


def test_retry_after_rebind_answered_without_reexecution():
    dep = one_service_deployment()
    first = []

    async def original():
        first.append(await dep.call(101, "kv", "put",
                                    {"key": "a", "value": 1}))

    dep.run_scenario(original())
    assert first[0].ok
    executed = dep.metrics.value("service.kv.executions")

    # Reconfigure away the replica set the call ran on, then retry.
    dep.rebind("kv", [3])

    async def retry():
        again = await dep.call(101, "kv", "put", {"key": "a", "value": 1},
                               retry_of=first[0].id)
        assert again.ok and again.args == first[0].args

    dep.run_scenario(retry())
    # Served from the cache: no server executed anything new.
    assert dep.metrics.value("service.kv.executions") == executed
    assert dep.metrics.value("service.kv.reply_cache.hits") == 1
    assert dep.metrics.value("service.kv.calls") == 1


def test_retry_miss_executes_then_aliases_the_original_id():
    dep = one_service_deployment()
    results = []

    async def scenario():
        # Retry of an attempt that never completed (id unknown): the
        # call must really execute...
        r1 = await dep.call(101, "kv", "put", {"key": "b", "value": 2},
                            retry_of=777)
        assert r1.ok
        # ...and the completed reply is filed under the original id too,
        # so the *next* retry of the same attempt hits.
        r2 = await dep.call(101, "kv", "get", {"key": "b"}, retry_of=777)
        results.extend([r1, r2])

    dep.run_scenario(scenario())
    assert results[1] is results[0]
    assert dep.metrics.value("service.kv.reply_cache.misses") == 1
    assert dep.metrics.value("service.kv.reply_cache.hits") == 1
    assert dep.metrics.value("service.kv.calls") == 1


def test_caches_are_per_service_and_can_be_disabled():
    dep = Deployment(seed=42, reply_cache=0)
    dep.add_service("kv", replicated_state_machine(2), KVStore,
                    servers=[1, 2], clients=[101])
    first = []

    async def scenario():
        first.append(await dep.call(101, "kv", "put",
                                    {"key": "a", "value": 1}))
        # With caching disabled the retry re-executes like a fresh call.
        again = await dep.call(101, "kv", "put", {"key": "a", "value": 1},
                               retry_of=first[0].id)
        assert again.ok and again is not first[0]

    dep.run_scenario(scenario())
    assert dep.metrics.value("service.kv.reply_cache.hits") == 0
