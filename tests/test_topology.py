"""Topology helpers: LAN, two-datacenter WAN, star, degraded sites."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.net import NetworkFabric, Node
from repro.net.topology import (
    LAN,
    WAN,
    degrade_site,
    star,
    two_datacenters,
    uniform_lan,
)
from repro.runtime import SimRuntime


def make_fabric(n):
    rt = SimRuntime()
    fabric = NetworkFabric(rt)
    for pid in range(1, n + 1):
        Node(pid, rt, fabric).start()
    return rt, fabric


def test_uniform_lan_sets_all_pairs():
    rt, fabric = make_fabric(3)
    uniform_lan(fabric, [1, 2, 3])
    for src, dst in ((1, 2), (2, 1), (1, 3), (3, 2)):
        assert fabric.link(src, dst) == LAN


def test_two_datacenters_split():
    rt, fabric = make_fabric(4)
    two_datacenters(fabric, [1, 2], [3, 4])
    assert fabric.link(1, 2) == LAN
    assert fabric.link(3, 4) == LAN
    assert fabric.link(1, 3) == WAN
    assert fabric.link(4, 2) == WAN


def test_star_blocks_spoke_to_spoke():
    rt, fabric = make_fabric(3)
    star(fabric, hub=1, spokes=[2, 3])
    sent = []
    fabric.trace.observers.append(
        lambda e: sent.append((e.kind, e.src, e.dst)))
    fabric.send(2, 1, "to-hub")
    fabric.send(2, 3, "to-spoke")
    rt.kernel.run_until(1.0)
    assert ("deliver", 2, 1) in sent
    assert ("drop-partition", 2, 3) in sent


def test_degrade_site_layers_on_existing_links():
    rt, fabric = make_fabric(2)
    uniform_lan(fabric, [1, 2])
    degrade_site(fabric, 2, extra_delay=0.5, loss=0.25)
    degraded = fabric.link(1, 2)
    assert degraded.delay == pytest.approx(LAN.delay + 0.5)
    assert degraded.loss == 0.25
    # Links not touching the site are unchanged.
    assert fabric.link(2, 1).delay == pytest.approx(LAN.delay + 0.5)


def test_wan_cluster_latency_split_end_to_end():
    spec = ServiceSpec(unique=True, bounded=10.0, acceptance=2)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=1)
    two_datacenters(cluster.fabric, [1, 2, cluster.client], [3])
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.5)
    assert result.ok
    # Two DC-A replicas sufficed: far below one WAN round trip.
    assert cluster.runtime.now() < 0.55  # includes the settle time
