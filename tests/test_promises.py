"""The promise-style API over Asynchronous Call (begin/result/gather)."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import ComputeApp, KVStore
from repro.core.grpc import gather_calls
from repro.errors import ConfigurationError

FAST = LinkSpec(delay=0.01, jitter=0.0)


def async_cluster(app_factory=KVStore, **kwargs):
    spec = kwargs.pop("spec", ServiceSpec(call="asynchronous",
                                          bounded=10.0, unique=True))
    return ServiceCluster(spec, app_factory, n_servers=3,
                          default_link=FAST, **kwargs)


def drive(cluster, coro):
    task = cluster.spawn_client(cluster.client, coro)

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)


def test_begin_returns_before_the_roundtrip():
    cluster = async_cluster()
    seen = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        handle = await grpc.begin("put", {"key": "k", "value": 1},
                                  cluster.group)
        seen["issue_time"] = cluster.runtime.now()
        seen["peek"] = handle.peek()
        result = await handle.result()
        seen["result"] = result
        seen["done_time"] = cluster.runtime.now()

    drive(cluster, scenario())
    assert seen["issue_time"] < 0.01        # returned immediately
    assert seen["peek"] is Status.WAITING
    assert seen["result"].ok
    assert seen["done_time"] >= 0.02        # waited a round trip


def test_result_is_idempotent_and_peek_after():
    cluster = async_cluster()
    seen = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        handle = await grpc.begin("get", {"key": "k"}, cluster.group)
        first = await handle.result()
        second = await handle.result()   # cached, not a second request
        seen["same"] = first is second
        seen["peek"] = handle.peek()

    drive(cluster, scenario())
    assert seen["same"]
    assert seen["peek"] is Status.OK


def test_gather_overlaps_round_trips():
    cluster = async_cluster(app_factory=lambda pid: KVStore(op_delay=0.1))
    seen = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        calls = [("put", {"key": f"k{i}", "value": i}) for i in range(5)]
        results = await gather_calls(grpc, calls, cluster.group)
        seen["results"] = results
        seen["elapsed"] = cluster.runtime.now()

    drive(cluster, scenario())
    assert all(r.ok for r in seen["results"])
    # Five calls with 100 ms server work each: concurrent, not serial.
    assert seen["elapsed"] < 0.3


def test_begin_requires_asynchronous_call():
    cluster = ServiceCluster(ServiceSpec(), KVStore, n_servers=1,
                             default_link=FAST)

    async def scenario():
        with pytest.raises(ConfigurationError):
            await cluster.grpc(cluster.client).begin(
                "get", {"key": "k"}, cluster.group)

    drive(cluster, scenario())


def test_peek_on_lost_handle_returns_none():
    cluster = async_cluster()
    seen = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        handle = await grpc.begin("get", {"key": "k"}, cluster.group)
        await grpc.request(handle.id)   # redeemed behind its back
        seen["peek"] = handle.peek()

    drive(cluster, scenario())
    assert seen["peek"] is None


def test_gather_mixed_operations():
    cluster = async_cluster(
        app_factory=lambda pid: ComputeApp(pid * 10.0),
        spec=ServiceSpec(call="asynchronous", bounded=10.0, unique=True,
                         acceptance=1))
    seen = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        results = await gather_calls(
            grpc, [("measure", {}), ("whoami", {})], cluster.group)
        seen["values"] = [r.args for r in results]

    drive(cluster, scenario())
    measure, whoami = seen["values"]
    assert measure in (10.0, 20.0, 30.0)
    assert whoami in (1, 2, 3)
