"""The replicated lock service: agreement needs total order."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import LockService
from repro.core.microprotocols import majority_vote

JITTERY = LinkSpec(delay=0.01, jitter=0.06)


def rsm_spec():
    return ServiceSpec(unique=True, ordering="total", acceptance=3,
                       bounded=0.0,
                       collation=(majority_vote, dict))


def race_two_clients(cluster):
    """Two clients race to acquire the same lock concurrently."""
    grants = {}

    async def contender(pid, name):
        result = await cluster.call(pid, "acquire",
                                    {"lock": "leader", "owner": name})
        # majority_vote collation: result.args is {answer: votes}.
        grants[name] = max(result.args, key=result.args.get)

    async def scenario():
        a, b = cluster.client_pids
        tasks = [cluster.spawn_client(a, contender(a, "alice")),
                 cluster.spawn_client(b, contender(b, "bob"))]
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    return grants


def test_total_order_grants_exactly_one_winner():
    for seed in range(4):
        cluster = ServiceCluster(rsm_spec(), LockService, n_servers=3,
                                 n_clients=2, seed=seed,
                                 default_link=JITTERY)
        grants = race_two_clients(cluster)
        # Both clients were told the same winner...
        assert grants["alice"] == grants["bob"], f"seed={seed}"
        # ...and every replica agrees who holds the lock.
        holders = {cluster.app(pid).holders.get("leader")
                   for pid in cluster.server_pids}
        assert len(holders) == 1, f"seed={seed}"
        assert holders.pop() == grants["alice"]


def test_without_ordering_replicas_can_split_brain():
    split_brains = 0
    for seed in range(8):
        spec = rsm_spec().with_(ordering="none")
        cluster = ServiceCluster(spec, LockService, n_servers=3,
                                 n_clients=2, seed=seed,
                                 default_link=JITTERY)
        race_two_clients(cluster)
        holders = {cluster.app(pid).holders.get("leader")
                   for pid in cluster.server_pids}
        if len(holders) > 1:
            split_brains += 1
    assert split_brains > 0   # the hazard total order removes


def test_release_and_reacquire_cycle():
    cluster = ServiceCluster(rsm_spec(), LockService, n_servers=3,
                             n_clients=1,
                             default_link=LinkSpec(delay=0.005,
                                                   jitter=0.0))
    client = cluster.client
    log = {}

    async def scenario():
        grpc = cluster.grpc(client)

        async def acquire(owner):
            result = await grpc.call("acquire",
                                     {"lock": "L", "owner": owner},
                                     cluster.group)
            return max(result.args, key=result.args.get)

        log["first"] = await acquire("alice")
        log["contested"] = await acquire("bob")     # denied: held
        release = await grpc.call("release",
                                  {"lock": "L", "owner": "alice"},
                                  cluster.group)
        log["released"] = max(release.args, key=release.args.get)
        log["second"] = await acquire("bob")        # now granted

    task = cluster.spawn_client(client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=1.0)
    assert log["first"] == "alice"
    assert log["contested"] == "alice"   # holder, not the contender
    assert log["released"] is True
    assert log["second"] == "bob"


def test_only_holder_can_release():
    cluster = ServiceCluster(rsm_spec(), LockService, n_servers=3,
                             default_link=LinkSpec(delay=0.005,
                                                   jitter=0.0))
    client = cluster.client
    outcome = {}

    async def scenario():
        grpc = cluster.grpc(client)
        await grpc.call("acquire", {"lock": "L", "owner": "alice"},
                        cluster.group)
        result = await grpc.call("release",
                                 {"lock": "L", "owner": "mallory"},
                                 cluster.group)
        outcome["stolen"] = max(result.args, key=result.args.get)
        holder = await grpc.call("holder", {"lock": "L"}, cluster.group)
        outcome["holder"] = max(holder.args, key=holder.args.get)

    task = cluster.spawn_client(client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=1.0)
    assert outcome["stolen"] is False
    assert outcome["holder"] == "alice"


def test_grant_logs_identical_across_replicas():
    cluster = ServiceCluster(rsm_spec(), LockService, n_servers=3,
                             n_clients=3, seed=2, default_link=JITTERY)

    async def churn(pid, name):
        grpc = cluster.grpc(pid)
        for i in range(3):
            await grpc.call("acquire",
                            {"lock": f"l{i}", "owner": name},
                            cluster.group)
            await grpc.call("release",
                            {"lock": f"l{i}", "owner": name},
                            cluster.group)

    async def scenario():
        tasks = [cluster.spawn_client(pid, churn(pid, f"c{pid}"))
                 for pid in cluster.client_pids]
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    logs = [tuple(cluster.app(pid).grant_log)
            for pid in cluster.server_pids]
    assert logs.count(logs[0]) == 3
