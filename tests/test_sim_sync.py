"""Unit tests for semaphores, locks, events, conditions, and queues."""

import pytest

from repro.errors import KernelError, TaskCancelled
from repro.sim import (
    Condition,
    Event,
    Kernel,
    Lock,
    Queue,
    Semaphore,
    sleep,
    spawn,
)


def test_semaphore_uncontended_acquire_does_not_yield():
    kernel = Kernel()
    order = []

    async def other():
        order.append("other")

    async def main():
        sem = Semaphore(1)
        await spawn(other())
        await sem.acquire()   # free: must not yield to `other`
        order.append("main")
        sem.release()
        await sleep(0)

    kernel.run(main())
    assert order == ["main", "other"]


def test_semaphore_blocks_at_zero_and_fifo_wakeup():
    kernel = Kernel()
    sem = Semaphore(0)
    order = []

    async def waiter(tag):
        await sem.acquire()
        order.append(tag)

    async def main():
        for tag in ("a", "b", "c"):
            await spawn(waiter(tag))
        await sleep(1)
        sem.release()
        sem.release()
        sem.release()
        await sleep(1)

    kernel.run(main())
    assert order == ["a", "b", "c"]


def test_semaphore_release_does_not_preempt():
    kernel = Kernel()
    sem = Semaphore(0)
    order = []

    async def waiter():
        await sem.acquire()
        order.append("waiter")

    async def main():
        await spawn(waiter())
        await sleep(1)
        sem.release()
        order.append("releaser-continues")
        await sleep(0)

    kernel.run(main())
    assert order == ["releaser-continues", "waiter"]


def test_semaphore_value_tracking():
    kernel = Kernel()

    async def main():
        sem = Semaphore(2)
        assert sem.value == 2
        await sem.acquire()
        await sem.acquire()
        assert sem.value == 0
        assert sem.locked()
        sem.release()
        assert sem.value == 1

    kernel.run(main())


def test_semaphore_negative_value_rejected():
    with pytest.raises(ValueError):
        Semaphore(-1)


def test_semaphore_reset_wakes_waiters():
    kernel = Kernel()
    sem = Semaphore(0)
    woken = []

    async def waiter(tag):
        await sem.acquire()
        woken.append(tag)

    async def main():
        await spawn(waiter("a"))
        await spawn(waiter("b"))
        await sleep(1)
        sem.reset(2)
        await sleep(1)

    kernel.run(main())
    assert woken == ["a", "b"]


def test_semaphore_context_manager():
    kernel = Kernel()

    async def main():
        sem = Semaphore(1)
        async with sem:
            assert sem.locked()
        assert sem.value == 1

    kernel.run(main())


def test_cancelled_waiter_is_removed_from_semaphore():
    kernel = Kernel()
    sem = Semaphore(0)
    outcome = []

    async def waiter():
        try:
            await sem.acquire()
            outcome.append("acquired")
        except TaskCancelled:
            outcome.append("cancelled")
            raise

    async def main():
        task = await spawn(waiter())
        await sleep(1)
        task.cancel()
        await sleep(0)
        sem.release()  # should not be consumed by the dead waiter
        assert sem.value == 1

    kernel.run(main())
    assert outcome == ["cancelled"]


def test_lock_release_unlocked_raises():
    kernel = Kernel()

    async def main():
        lock = Lock()
        with pytest.raises(KernelError):
            lock.release()
        await lock.acquire()
        lock.release()

    kernel.run(main())


def test_lock_mutual_exclusion():
    kernel = Kernel()
    lock = Lock()
    trace = []

    async def critical(tag):
        async with lock:
            trace.append((tag, "in"))
            await sleep(1)
            trace.append((tag, "out"))

    async def main():
        t1 = await spawn(critical("a"))
        t2 = await spawn(critical("b"))
        await t1.join()
        await t2.join()

    kernel.run(main())
    assert trace == [("a", "in"), ("a", "out"), ("b", "in"), ("b", "out")]


def test_event_set_wakes_all_waiters():
    kernel = Kernel()
    event = Event()
    woken = []

    async def waiter(tag):
        await event.wait()
        woken.append(tag)

    async def main():
        for tag in range(3):
            await spawn(waiter(tag))
        await sleep(1)
        assert not event.is_set()
        event.set()
        await sleep(0)
        await event.wait()  # already set: returns immediately

    kernel.run(main())
    assert woken == [0, 1, 2]


def test_event_clear_allows_rewait():
    kernel = Kernel()
    event = Event()

    async def main():
        event.set()
        await event.wait()
        event.clear()
        assert not event.is_set()

    kernel.run(main())


def test_condition_wait_notify():
    kernel = Kernel()
    cond = Condition()
    items = []
    got = []

    async def consumer():
        async with cond:
            while not items:
                await cond.wait()
            got.append(items.pop())

    async def main():
        task = await spawn(consumer())
        await sleep(1)
        async with cond:
            items.append("x")
            cond.notify()
        await task.join()

    kernel.run(main())
    assert got == ["x"]


def test_condition_wait_requires_lock():
    kernel = Kernel()

    async def main():
        cond = Condition()
        with pytest.raises(KernelError):
            await cond.wait()

    kernel.run(main())


def test_condition_notify_all():
    kernel = Kernel()
    cond = Condition()
    woken = []

    async def waiter(tag):
        async with cond:
            await cond.wait()
            woken.append(tag)

    async def main():
        tasks = [await spawn(waiter(i)) for i in range(3)]
        await sleep(1)
        async with cond:
            cond.notify_all()
        for t in tasks:
            await t.join()

    kernel.run(main())
    assert sorted(woken) == [0, 1, 2]


def test_queue_fifo_and_blocking_get():
    kernel = Kernel()
    queue = Queue()
    got = []

    async def consumer():
        for _ in range(3):
            got.append(await queue.get())

    async def main():
        task = await spawn(consumer())
        await sleep(1)
        queue.put(1)
        queue.put(2)
        queue.put(3)
        await task.join()

    kernel.run(main())
    assert got == [1, 2, 3]


def test_queue_get_nowait_and_len():
    kernel = Kernel()

    async def main():
        queue = Queue()
        queue.put("a")
        queue.put("b")
        assert len(queue) == 2
        assert queue.get_nowait() == "a"
        assert not queue.empty()
        queue.clear()
        assert queue.empty()
        with pytest.raises(IndexError):
            queue.get_nowait()

    kernel.run(main())


def test_queue_handoff_to_waiting_getter():
    kernel = Kernel()
    queue = Queue()
    got = []

    async def consumer():
        got.append(await queue.get())

    async def main():
        await spawn(consumer())
        await sleep(1)
        queue.put("direct")
        assert queue.empty()  # handed straight to the waiter
        await sleep(0)

    kernel.run(main())
    assert got == ["direct"]
