"""The Call Observer micro-protocol: tracing without interference."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore

FAST = LinkSpec(delay=0.005, jitter=0.0)


def observed_cluster(**kwargs):
    spec = kwargs.pop("spec", ServiceSpec(acceptance=3, bounded=5.0,
                                          unique=True))
    return ServiceCluster(spec, KVStore, n_servers=3, default_link=FAST,
                          observe=True, **kwargs)


def test_timeline_covers_the_call_lifecycle():
    cluster = observed_cluster()
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.3)
    assert result.ok
    key = (cluster.client, 1, result.id)
    kinds = [p.kind for p in cluster.call_log.timeline(key)]
    assert kinds[0] == "issued"
    assert kinds.count("received-Call") == 3      # one per server
    assert kinds.count("executed") == 3
    assert kinds.count("received-Reply") == 3     # back at the client
    assert "client-resumed" in kinds
    # Time ordering holds.
    times = [p.time for p in cluster.call_log.timeline(key)]
    assert times == sorted(times)


def test_first_execution_latency_matches_link_delay():
    cluster = observed_cluster()
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.2)
    key = (cluster.client, 1, result.id)
    latency = cluster.call_log.first_execution_latency(key)
    assert latency == pytest.approx(0.005, abs=0.002)


def test_observer_attributes_points_to_nodes():
    cluster = observed_cluster()
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.2)
    key = (cluster.client, 1, result.id)
    executions = cluster.call_log.executions(key)
    assert sorted(p.node for p in executions) == [1, 2, 3]


def test_multiple_calls_tracked_separately():
    cluster = observed_cluster()
    r1 = cluster.call_and_run("put", {"key": "a", "value": 1},
                              extra_time=0.2)
    r2 = cluster.call_and_run("put", {"key": "b", "value": 2},
                              extra_time=0.2)
    log = cluster.call_log
    assert len(log.calls()) == 2
    k1 = (cluster.client, 1, r1.id)
    k2 = (cluster.client, 1, r2.id)
    assert log.executions(k1) and log.executions(k2)
    assert log.timeline(k1) != log.timeline(k2)


def test_format_timeline_is_readable():
    cluster = observed_cluster()
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.2)
    key = (cluster.client, 1, result.id)
    text = cluster.call_log.format_timeline(key)
    assert "issued" in text and "executed" in text and "ms" in text


def test_observer_does_not_change_behavior():
    """The same seeded run with and without the observer produces
    byte-identical application state and network traffic counts."""
    def run(observe):
        cluster = ServiceCluster(
            ServiceSpec(acceptance=3, bounded=5.0, unique=True),
            KVStore, n_servers=3, seed=7,
            default_link=LinkSpec(delay=0.01, jitter=0.01, loss=0.1),
            observe=observe)
        for i in range(5):
            cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                                 extra_time=0.3)
        states = [cluster.app(pid).data for pid in cluster.server_pids]
        return states, dict(cluster.trace.counts)

    plain_states, plain_counts = run(False)
    observed_states, observed_counts = run(True)
    assert plain_states == observed_states
    assert plain_counts == observed_counts


def test_observer_with_total_order_traces_order_messages():
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="total")
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST, observe=True)
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.3)
    key = (cluster.client, 1, result.id)
    kinds = [p.kind for p in cluster.call_log.timeline(key)]
    assert "received-Order" in kinds
