"""Integration tests: basic call paths of assembled gRPC services."""

import pytest

from repro import (
    Group,
    LinkSpec,
    ServiceCluster,
    ServiceSpec,
    Status,
    read_optimized,
)
from repro.apps import ComputeApp, CounterApp, KVStore
from repro.core.microprotocols import (
    ALL,
    all_replies,
    average,
    first_reply,
    majority_vote,
)
from repro.errors import ConfigurationError, UnknownCallError


def test_synchronous_call_returns_result_and_status():
    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=3)
    result = cluster.call_and_run("put", {"key": "x", "value": 10})
    assert result.ok
    assert result.id == 1
    result = cluster.call_and_run("get", {"key": "x"})
    assert result.ok
    assert result.args == 10


def test_sequential_calls_get_increasing_ids():
    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=2)
    ids = [cluster.call_and_run("get", {"key": "k"}).id for _ in range(4)]
    assert ids == [1, 2, 3, 4]


def test_call_reaches_all_group_members():
    cluster = ServiceCluster(
        read_optimized().with_(acceptance=3), KVStore, n_servers=3)
    result = cluster.call_and_run("put", {"key": "a", "value": 1},
                                  extra_time=0.5)
    assert result.ok
    for pid in cluster.server_pids:
        assert cluster.app(pid).data == {"a": 1}


def test_point_to_point_rpc_is_group_of_one():
    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=1)
    result = cluster.call_and_run("put", {"key": "p", "value": "v"})
    assert result.ok
    assert cluster.app(1).data == {"p": "v"}


def test_acceptance_one_returns_after_first_reply():
    spec = read_optimized(timebound=10.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.make_slow(2, 5.0)
    cluster.make_slow(3, 5.0)

    result = cluster.call_and_run("get", {"key": "x"})
    assert result.ok
    # Completed at roughly one fast round-trip, not the slow replicas'.
    assert cluster.runtime.now() < 1.0


def test_acceptance_all_waits_for_every_member():
    spec = ServiceSpec(acceptance=ALL, bounded=60.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.make_slow(3, 2.0)
    result = cluster.call_and_run("get", {"key": "x"})
    assert result.ok
    assert cluster.runtime.now() >= 2.0


def test_bounded_termination_times_out_when_servers_unreachable():
    cluster = ServiceCluster(read_optimized(timebound=1.0), KVStore,
                             n_servers=2)
    for pid in cluster.server_pids:
        cluster.crash(pid)
    result = cluster.call_and_run("get", {"key": "x"})
    assert result.status is Status.TIMEOUT
    assert cluster.runtime.now() == pytest.approx(1.0, abs=0.01)


def test_unbounded_call_waits_out_a_long_outage():
    # No Bounded Termination: the call keeps retransmitting until the
    # partition heals — the paper's unbounded termination semantics.
    spec = ServiceSpec(bounded=0.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=1)
    cluster.partition([cluster.client], cluster.server_pids)
    cluster.runtime.call_later(3.0, cluster.heal)
    result = cluster.call_and_run("put", {"key": "k", "value": 1})
    assert result.ok
    assert cluster.runtime.now() >= 3.0


def test_asynchronous_call_returns_immediately_then_redeems():
    spec = read_optimized().with_(call="asynchronous")
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=LinkSpec(delay=0.1, jitter=0.0))
    outcome = {}

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        issued = await grpc.call("put", {"key": "k", "value": 5},
                                 cluster.group)
        outcome["issue_time"] = cluster.runtime.now()
        assert issued.status is Status.WAITING
        result = await grpc.request(issued.id)
        outcome["result"] = result
        outcome["redeem_time"] = cluster.runtime.now()

    task = cluster.spawn_client(cluster.client, scenario())
    cluster.run_scenario(_join(cluster, task))
    assert outcome["issue_time"] < 0.1           # returned pre-roundtrip
    assert outcome["result"].ok
    assert outcome["redeem_time"] >= 0.2         # waited for the reply


def test_async_request_for_unknown_id_raises():
    spec = read_optimized().with_(call="asynchronous")
    cluster = ServiceCluster(spec, KVStore, n_servers=1)

    async def scenario():
        grpc = cluster.grpc(cluster.client)
        with pytest.raises(UnknownCallError):
            await grpc.request(999)

    task = cluster.spawn_client(cluster.client, scenario())
    cluster.run_scenario(_join(cluster, task))


def test_request_without_async_microprotocol_rejected():
    cluster = ServiceCluster(read_optimized(), KVStore, n_servers=1)

    async def scenario():
        with pytest.raises(ConfigurationError):
            await cluster.grpc(cluster.client).request(1)

    task = cluster.spawn_client(cluster.client, scenario())
    cluster.run_scenario(_join(cluster, task))


def test_concurrent_client_calls_multiplex_correctly():
    cluster = ServiceCluster(read_optimized(timebound=30.0), KVStore,
                             n_servers=2, n_clients=2)
    results = {}

    async def worker(pid, key):
        res = await cluster.call(pid, "put", {"key": key, "value": pid})
        results[pid] = res

    async def scenario():
        tasks = [
            cluster.spawn_client(cluster.client_pids[0],
                                 worker(cluster.client_pids[0], "a")),
            cluster.spawn_client(cluster.client_pids[1],
                                 worker(cluster.client_pids[1], "b")),
        ]
        for t in tasks:
            await cluster.runtime.join(t)

    cluster.run_scenario(scenario(), extra_time=0.5)
    assert results[cluster.client_pids[0]].ok
    assert results[cluster.client_pids[1]].ok
    assert cluster.app(1).data == {"a": 101, "b": 102}


# ----------------------------------------------------------------------
# Collation semantics
# ----------------------------------------------------------------------

def _compute_cluster(collation, acceptance, n=3, **kwargs):
    spec = ServiceSpec(acceptance=acceptance, collation=collation,
                       bounded=30.0)
    return ServiceCluster(spec, lambda pid: ComputeApp(pid * 10.0),
                          n_servers=n, **kwargs)


def test_collation_all_replies_collects_every_member():
    cluster = _compute_cluster((all_replies, list), acceptance=3)
    result = cluster.call_and_run("measure", {})
    assert result.ok
    assert sorted(result.args) == [10.0, 20.0, 30.0]


def test_collation_average():
    cluster = _compute_cluster((average, None), acceptance=3)
    result = cluster.call_and_run("measure", {})
    assert result.ok
    mean, count = result.args
    assert mean == pytest.approx(20.0)
    assert count == 3


def test_collation_first_reply_is_fastest_server():
    cluster = _compute_cluster(
        (first_reply, None), acceptance=3,
        default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.make_slow(2, 1.0)
    cluster.make_slow(3, 2.0)
    result = cluster.call_and_run("whoami", {})
    assert result.ok
    assert result.args == 1   # only server 1 was fast


def test_collation_majority_vote():
    cluster = _compute_cluster((majority_vote, dict), acceptance=3)
    result = cluster.call_and_run("whoami", {})
    assert result.ok
    assert set(result.args) == {1, 2, 3}
    assert all(votes == 1 for votes in result.args.values())


def test_parallel_partial_sum_reduction():
    values = list(range(100))
    cluster = _compute_cluster((
        lambda acc, r: acc + r, 0.0), acceptance=3)
    result = cluster.call_and_run(
        "partial_sum", {"values": values,
                        "members": list(cluster.server_pids)})
    assert result.ok
    assert result.args == pytest.approx(sum(values))


# ----------------------------------------------------------------------
# Counter basics
# ----------------------------------------------------------------------

def test_counter_increments_on_every_replica():
    # unique=True (exactly-once): retransmissions that race the replies
    # must not re-execute the non-idempotent increment.
    spec = ServiceSpec(acceptance=3, bounded=30.0, unique=True)
    cluster = ServiceCluster(spec, CounterApp, n_servers=3)
    for _ in range(5):
        assert cluster.call_and_run("inc", {"amount": 2},
                                    extra_time=0.2).ok
    for pid in cluster.server_pids:
        assert cluster.app(pid).value == 10


def test_at_least_once_counter_may_overshoot_but_never_undershoot():
    # Without Unique Execution a retransmission racing the reply
    # re-executes: the hallmark of at-least-once (Figure 1, row 1).
    spec = ServiceSpec(acceptance=3, bounded=30.0, unique=False)
    cluster = ServiceCluster(spec, CounterApp, n_servers=3)
    for _ in range(5):
        assert cluster.call_and_run("inc", {"amount": 2},
                                    extra_time=0.2).ok
    for pid in cluster.server_pids:
        assert cluster.app(pid).value >= 10


def _join(cluster, task):
    async def waiter():
        await cluster.runtime.join(task)
    return waiter()


# ----------------------------------------------------------------------
# Bounded Termination disarms completed calls
# ----------------------------------------------------------------------

def test_bounded_timeout_disarmed_when_call_completes():
    # A completed call must not leave its expiry TIMEOUT armed for the
    # rest of the bound: with long bounds and high call rates the moot
    # timers would otherwise pile up in the kernel's timer heap (one
    # per call, live for the full 30s here) and tax every heap
    # operation.  Retirement of the client record disarms the bound.
    spec = ServiceSpec(acceptance=1, bounded=30.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2)
    client_bus = cluster.grpc(cluster.client).bus
    # Reliable Communication keeps one periodic retransmit TIMEOUT armed
    # at all times; that steady-state count is the baseline the per-call
    # bound must return to once each call completes.
    baseline = cluster.call_and_run("get", {"key": "k"}).ok \
        and client_bus.pending_timeouts()
    for i in range(10):
        assert cluster.call_and_run("put", {"key": "k", "value": i}).ok
        assert client_bus.pending_timeouts() == baseline
    # The cancelled timers must not linger in the heap either: the
    # kernel's lazy purge compacts once dead entries dominate.
    kernel = cluster.runtime.kernel
    live = [t for (_, _, t) in kernel._timers if not t.cancelled]
    assert len(kernel._timers) - len(live) <= max(16, len(live))


def test_bounded_timeout_still_fires_for_stuck_calls():
    # Disarming on retirement must not weaken the bound itself: a call
    # whose servers never answer still times out at ``timebound``.
    spec = ServiceSpec(acceptance=1, bounded=0.5)
    cluster = ServiceCluster(spec, KVStore, n_servers=1,
                             default_link=LinkSpec(delay=0.01, loss=1.0))
    result = cluster.call_and_run("get", {"key": "x"}, extra_time=1.0)
    assert result.status is Status.TIMEOUT
    assert cluster.runtime.now() >= 0.5
