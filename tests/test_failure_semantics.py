"""Figure 1 as executable checks: failure semantics under injected faults.

Each traditional semantics is a combination of the unique-execution and
atomic-execution properties; these tests drive the configured services
through message loss, duplication, reply replay and server crashes and
verify exactly the guarantees Figure 1 promises — no more, no less.
"""

import pytest

from repro import (
    LinkSpec,
    ServiceCluster,
    ServiceSpec,
    Status,
    at_least_once,
    at_most_once,
    exactly_once,
)
from repro.apps import BankApp, CounterApp
from repro.faults import calls_to, drop_first, replies_from


def lossy_link():
    return LinkSpec(delay=0.01, jitter=0.005, loss=0.15, duplicate=0.1)


def make_counter_cluster(spec, seed=0, link=None, **kwargs):
    return ServiceCluster(spec, CounterApp, n_servers=3, seed=seed,
                          default_link=link or lossy_link(), **kwargs)


def drive_increments(cluster, n_calls=10):
    results = []
    for i in range(n_calls):
        results.append(cluster.call_and_run(
            "inc", {"amount": 1, "tag": i}, extra_time=0.3))
    return results


# ----------------------------------------------------------------------
# Row 1: at least once  (unique=NO, atomic=NO)
# ----------------------------------------------------------------------

def test_at_least_once_normal_termination_executes_one_or_more():
    spec = at_least_once(acceptance=3, bounded=30.0)
    cluster = make_counter_cluster(spec, seed=7)
    results = drive_increments(cluster)
    assert all(r.ok for r in results)
    for pid in cluster.server_pids:
        dispatcher = cluster.dispatcher(pid)
        for tag in range(10):
            assert dispatcher.executions(tag) >= 1


def test_at_least_once_actually_over_executes_under_loss():
    # The semantics *permit* over-execution; verify the faults we inject
    # really do provoke it, so the exactly-once comparison below is
    # meaningful and not vacuous.
    spec = at_least_once(acceptance=3, bounded=30.0)
    total_over = 0
    for seed in range(5):
        cluster = make_counter_cluster(spec, seed=seed)
        drive_increments(cluster)
        for pid in cluster.server_pids:
            for tag in range(10):
                total_over += max(
                    0, cluster.dispatcher(pid).executions(tag) - 1)
    assert total_over > 0


# ----------------------------------------------------------------------
# Row 2: exactly once  (unique=YES, atomic=NO)
# ----------------------------------------------------------------------

def test_exactly_once_executes_exactly_once_despite_loss_and_dup():
    spec = exactly_once(acceptance=3, bounded=30.0)
    for seed in range(5):
        cluster = make_counter_cluster(spec, seed=seed)
        results = drive_increments(cluster)
        assert all(r.ok for r in results)
        for pid in cluster.server_pids:
            for tag in range(10):
                assert cluster.dispatcher(pid).executions(tag) == 1, \
                    f"seed={seed} server={pid} tag={tag}"
        for pid in cluster.server_pids:
            assert cluster.app(pid).value == 10


def test_exactly_once_replays_stored_reply_when_reply_lost():
    # Drop the first 2 REPLYs from server 1; the retransmitted call must
    # be answered from the Unique Execution reply store, not re-executed.
    spec = exactly_once(acceptance=1, bounded=30.0)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    fault = drop_first(cluster.fabric, 2, replies_from(1))
    result = cluster.call_and_run("inc", {"amount": 1, "tag": "t"},
                                  extra_time=0.5)
    assert result.ok
    assert fault.dropped == 2
    assert cluster.dispatcher(1).executions("t") == 1
    assert cluster.app(1).value == 1


def test_exactly_once_call_loss_only_delays():
    spec = exactly_once(acceptance=1, bounded=30.0)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    fault = drop_first(cluster.fabric, 3, calls_to(1))
    result = cluster.call_and_run("inc", {"amount": 1, "tag": "t"},
                                  extra_time=0.5)
    assert result.ok
    assert fault.dropped == 3
    assert cluster.dispatcher(1).executions("t") == 1


def test_exactly_once_abnormal_termination_at_most_one_execution():
    # Partition the single server away; the call times out (abnormal
    # termination).  Guarantee: "it has not been executed more than once".
    spec = exactly_once(acceptance=1, bounded=0.5)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.partition([cluster.client], [1])
    result = cluster.call_and_run("inc", {"amount": 1, "tag": "t"},
                                  extra_time=0.5)
    assert result.status is Status.TIMEOUT
    assert cluster.dispatcher(1).executions("t") <= 1


def test_unique_execution_reply_store_drains_after_ack():
    spec = exactly_once(acceptance=1, bounded=30.0)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.call_and_run("inc", {"amount": 1}, extra_time=1.0)
    unique = cluster.grpc(1).micro("Unique_Execution")
    assert unique.old_results == {}  # retired by the client's ACK


# ----------------------------------------------------------------------
# Row 3: at most once  (unique=YES, atomic=YES)
# ----------------------------------------------------------------------

def bank_factory(pid):
    return BankApp({"alice": 100, "bob": 100}, transfer_delay=0.05)


def test_non_atomic_crash_mid_transfer_loses_money():
    # Control experiment: exactly-once (no atomicity) + crash mid-transfer
    # leaves the debit persisted without the credit.
    spec = exactly_once(acceptance=1, bounded=1.0)
    cluster = ServiceCluster(spec, bank_factory, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    # Crash while the transfer sits in its non-atomic window.
    cluster.runtime.call_later(0.035, lambda: cluster.crash(1))
    result = cluster.call_and_run(
        "transfer", {"src": "alice", "dst": "bob", "amount": 30})
    assert result.status is Status.TIMEOUT
    cluster.recover(1)
    cluster.settle(0.2)
    stable = cluster.node(1).stable
    assert stable.get("acct:alice") == 70     # debit persisted
    assert stable.get("acct:bob") == 100      # credit lost
    total = stable.get("acct:alice") + stable.get("acct:bob")
    assert total == 170                       # invariant broken


def test_at_most_once_crash_mid_transfer_rolls_back():
    # Same crash, with Atomic Execution: recovery restores the checkpoint,
    # so the half-done transfer is erased — execution was atomic.
    spec = at_most_once(acceptance=1, bounded=1.0)
    cluster = ServiceCluster(spec, bank_factory, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    cluster.runtime.call_later(0.035, lambda: cluster.crash(1))
    result = cluster.call_and_run(
        "transfer", {"src": "alice", "dst": "bob", "amount": 30})
    assert result.status is Status.TIMEOUT
    cluster.recover(1)
    cluster.settle(0.2)
    stable = cluster.node(1).stable
    assert stable.get("acct:alice") == 100
    assert stable.get("acct:bob") == 100


def test_at_most_once_completed_transfers_survive_crash():
    spec = at_most_once(acceptance=1, bounded=5.0)
    cluster = ServiceCluster(spec, bank_factory, n_servers=1,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    result = cluster.call_and_run(
        "transfer", {"src": "alice", "dst": "bob", "amount": 30},
        extra_time=0.5)
    assert result.ok
    cluster.crash(1)
    cluster.recover(1)
    cluster.settle(0.2)
    # The post-execution checkpoint includes the completed transfer.
    result = cluster.call_and_run("balance", {"account": "bob"},
                                  extra_time=0.5)
    assert result.ok
    assert result.args == 130


def test_at_most_once_money_conserved_across_crash_storm():
    spec = at_most_once(acceptance=1, bounded=0.4)
    cluster = ServiceCluster(spec, bank_factory, n_servers=1,
                             default_link=LinkSpec(delay=0.005,
                                                   jitter=0.002))
    rng_times = [0.03, 0.02, 0.045, 0.01, 0.06]
    for i, crash_after in enumerate(rng_times):
        start = cluster.runtime.now()
        cluster.runtime.call_later(crash_after,
                                   lambda: cluster.crash(1))
        cluster.call_and_run(
            "transfer", {"src": "alice", "dst": "bob", "amount": 10})
        cluster.recover(1)
        cluster.settle(0.3)
    total = cluster.call_and_run("total", {}, extra_time=0.3)
    assert total.ok
    assert total.args == 200  # money conserved whatever completed


# ----------------------------------------------------------------------
# The matrix itself
# ----------------------------------------------------------------------

def test_figure1_matrix_names():
    assert at_least_once().failure_semantics == "at least once"
    assert exactly_once().failure_semantics == "exactly once"
    assert at_most_once().failure_semantics == "at most once"
    odd = ServiceSpec(unique=False, execution="serial")
    assert odd.failure_semantics == "at least once"
