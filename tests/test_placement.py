"""The elastic placement plane: ring, live migration, membership-driven
rebinding.

Covers the consistent-hash ring's determinism and minimal-movement
property, the stable-backed KV shard, the four-phase key migration
(including racing writes repaired at catch-up and salvage from a dead
source's stable store), call parking across a cutover, the automatic
:class:`~repro.placement.driver.RebindDriver`, and the acceptance
scenario: a resize under steady workload with a shard killed
mid-migration, after which every acknowledged write is readable and no
key is owned by two shards.
"""

import pytest

from repro import Deployment, HashRing, ServiceSpec, build_elastic_kv
from repro.apps import StableKVStore
from repro.errors import MigrationError, PlacementError
from repro.placement import KeyMigration, MigrationState, ShardMove
from repro.placement.ring import plan_moves

KEYS = [f"key-{i}" for i in range(400)]

ELASTIC_SPEC = ServiceSpec(reliable=True, unique=True, execution="serial",
                           bounded=2.0, acceptance=1)


# ---------------------------------------------------------------------------
# HashRing
# ---------------------------------------------------------------------------


def test_ring_is_deterministic_across_builds():
    r1 = HashRing(["a", "b", "c"], vnodes=32, seed=7)
    r2 = HashRing(["c", "a", "b"], vnodes=32, seed=7)  # order-independent
    assert [r1.route(k) for k in KEYS] == [r2.route(k) for k in KEYS]
    # The seed is part of the placement function.
    r3 = HashRing(["a", "b", "c"], vnodes=32, seed=8)
    assert any(r1.route(k) != r3.route(k) for k in KEYS)


def test_ring_spreads_keys_over_every_node():
    ring = HashRing([f"s{i}" for i in range(4)], vnodes=64)
    buckets = ring.partition(KEYS)
    assert sum(len(v) for v in buckets.values()) == len(KEYS)
    for name, keys in buckets.items():
        # 64 vnodes keep each share within loose bounds of the 25% ideal.
        assert 0.05 * len(KEYS) < len(keys) < 0.50 * len(KEYS), name


def test_ring_add_moves_only_adjacent_ranges():
    before = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
    after = before.copy()
    after.add("s4")
    moves = before.moved_keys(after, KEYS)
    # Every moved key lands on the newcomer — nothing reshuffles between
    # the old nodes — and the moved share is O(K/N), far from modulo-N's
    # near-total remap.
    assert all(new == "s4" for (_, new) in moves.values())
    assert 0 < len(moves) / len(KEYS) <= 0.45


def test_ring_remove_moves_only_the_victims_keys():
    before = HashRing(["s0", "s1", "s2", "s3"], vnodes=64)
    after = before.copy()
    after.remove("s2")
    moves = before.moved_keys(after, KEYS)
    owned = [k for k in KEYS if before.route(k) == "s2"]
    assert set(moves) == set(owned)
    assert all(old == "s2" for (old, _) in moves.values())


def test_ring_rejects_misuse():
    with pytest.raises(PlacementError):
        HashRing(vnodes=0)
    ring = HashRing(["a"])
    with pytest.raises(PlacementError):
        ring.add("a")
    with pytest.raises(PlacementError):
        ring.remove("b")
    with pytest.raises(PlacementError):
        HashRing().route("k")


def test_plan_moves_is_deterministic_and_minimal():
    before = HashRing(["s0", "s1", "s2"], vnodes=64)
    after = before.copy()
    after.add("s3")
    plan = plan_moves(after, before.partition(KEYS))
    again = plan_moves(after, before.partition(KEYS))
    assert plan == again
    # Only keys whose owner changed travel, each to its new owner.
    for (source, dest), keys in plan.items():
        assert dest == "s3"
        for key in keys:
            assert before.route(key) == source
            assert after.route(key) == dest
    planned = {k for keys in plan.values() for k in keys}
    assert planned == set(before.moved_keys(after, KEYS))


# ---------------------------------------------------------------------------
# StableKVStore: acked writes survive crashes
# ---------------------------------------------------------------------------


def test_stable_kvstore_survives_crash_and_recovery():
    dep = Deployment(seed=9)
    dep.add_service("kv", ELASTIC_SPEC, StableKVStore,
                    servers=[1], clients=[101])

    async def write():
        assert (await dep.call(101, "kv", "put",
                               {"key": "a", "value": 1})).ok
        assert (await dep.call(101, "kv", "put",
                               {"key": "b", "value": 2})).ok
        assert (await dep.call(101, "kv", "delete", {"key": "b"})).ok

    dep.run_scenario(write())
    dep.crash(1)
    assert dep.services["kv"].app(1).data == {}      # volatile state died
    dep.recover(1)
    assert dep.services["kv"].app(1).data == {"a": 1}  # reloaded from disk

    async def read():
        result = await dep.call(101, "kv", "get", {"key": "a"})
        assert result.ok and result.args == 1
        gone = await dep.call(101, "kv", "get", {"key": "b"})
        assert gone.ok and gone.args is None         # deletes are stable too

    dep.run_scenario(read())


# ---------------------------------------------------------------------------
# Elastic KV end-to-end: build, grow, shrink
# ---------------------------------------------------------------------------


def write_keys(dep, kv, n):
    writes = {f"key-{i}": i for i in range(n)}

    async def scenario():
        for key, value in writes.items():
            assert (await kv.put(key, value)).ok

    dep.run_scenario(scenario())
    return writes


def assert_single_ownership(dep, plane, keys):
    """Every key lives on exactly one ring shard: the one that routes it."""
    for key in keys:
        holders = [name for name in plane.ring.nodes
                   if key in dep.services[name].app(
                       dep.services[name].server_pids[0]).data]
        assert holders == [plane.ring.route(key)], key


def test_build_elastic_kv_end_to_end():
    dep = Deployment(seed=20)
    plane, kv = build_elastic_kv(dep, 3)
    assert plane.shards == ["shard-0", "shard-1", "shard-2"]
    writes = write_keys(dep, kv, 30)

    async def read():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value
        assert await kv.keys() == sorted(writes)

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)
    assert dep.metrics.value("placement.router.lookups") >= 60


def test_add_shard_migrates_minimally():
    dep = Deployment(seed=21)
    plane, kv = build_elastic_kv(dep, 3)
    writes = write_keys(dep, kv, 40)
    before = plane.ring.copy()

    dep.run_scenario(plane.add_shard())

    assert plane.shards == [f"shard-{i}" for i in range(4)]
    assert plane.epoch == 1
    # Only the ranges adjacent to the newcomer travelled.
    moved = before.moved_keys(plane.ring, writes)
    assert all(new == "shard-3" for (_, new) in moved.values())
    assert dep.metrics.value("placement.migration.runs") == 1
    assert dep.metrics.value("placement.migration.keys_moved") == len(moved)
    assert dep.metrics.gauge("placement.ring.shards").value == 4
    assert dep.metrics.gauge("placement.ring.epoch").value == 1

    async def read():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)


def test_remove_shard_rehomes_its_keys():
    dep = Deployment(seed=22)
    plane, kv = build_elastic_kv(dep, 4)
    writes = write_keys(dep, kv, 40)

    dep.run_scenario(plane.remove_shard("shard-1"))

    assert "shard-1" not in plane.ring
    # The retired shard holds nothing (volatile or stable).
    svc = dep.services["shard-1"]
    assert svc.app(svc.server_pids[0]).data == {}
    node = dep.nodes[svc.server_pids[0]]
    assert node.stable.keys_with_prefix(StableKVStore.STABLE_PREFIX) == []

    async def read():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)


def test_reshape_guards():
    dep = Deployment(seed=23)
    plane, _ = build_elastic_kv(dep, 1)

    async def scenario():
        with pytest.raises(PlacementError):
            await plane.remove_shard("shard-9")      # unknown
        with pytest.raises(PlacementError):
            await plane.remove_shard("shard-0")      # last shard
        with pytest.raises(PlacementError):
            await plane.drain_dead_shard("shard-0")  # nothing can absorb
        await plane.add_shard()
        with pytest.raises(PlacementError):
            await plane.add_shard("shard-1")         # already on the ring

    dep.run_scenario(scenario())


# ---------------------------------------------------------------------------
# Call parking across a cutover
# ---------------------------------------------------------------------------


def test_parked_call_waits_for_release_then_routes_fresh():
    dep = Deployment(seed=24)
    plane, kv = build_elastic_kv(dep, 2)
    write_keys(dep, kv, 4)
    key = "key-0"
    results = []

    async def scenario():
        plane._park({key})
        task = dep.runtime.spawn(kv.get(key), name="parked-get")
        await dep.runtime.sleep(0.5)
        assert not results             # still gated
        other = await kv.get("key-1")  # non-moving keys are untouched
        assert other.ok
        plane._release()
        results.append(await dep.runtime.join(task))

    dep.run_scenario(scenario())
    assert results[0].ok and results[0].args == 0
    assert dep.metrics.value("placement.parked_calls") >= 1


def test_calls_issued_during_resize_all_complete():
    dep = Deployment(seed=25)
    plane, kv = build_elastic_kv(dep, 3)
    writes = write_keys(dep, kv, 30)
    results = []

    async def workload():
        for i, key in enumerate(sorted(writes)):
            results.append(await kv.put(key, 1000 + i))
            await dep.runtime.sleep(0.002)

    async def scenario():
        work = dep.runtime.spawn(workload(), name="workload")
        await dep.runtime.sleep(0.01)
        await plane.add_shard()
        await dep.runtime.join(work)

    dep.run_scenario(scenario(), extra_time=1.0)
    assert len(results) == len(writes)
    assert all(r.ok for r in results)

    async def read():
        for i, key in enumerate(sorted(writes)):
            result = await kv.get(key)
            assert result.ok and result.args == 1000 + i, key

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)


# ---------------------------------------------------------------------------
# The migration protocol itself
# ---------------------------------------------------------------------------


def test_catch_up_ships_racing_writes_and_deletes():
    dep = Deployment(seed=26)
    dep.add_service("src", ELASTIC_SPEC, StableKVStore,
                    servers=[1], clients=[101])
    dep.add_service("dst", ELASTIC_SPEC, StableKVStore,
                    servers=[2], clients=[101])

    async def seed():
        for key, value in (("k1", 1), ("k2", 2), ("k3", 3)):
            assert (await dep.call(101, "src", "put",
                                   {"key": key, "value": value})).ok

    dep.run_scenario(seed())
    move = ShardMove("src", "dst", ["k1", "k2", "k3"])
    migration = KeyMigration(dep, 101, [move], epoch=0,
                             stable_prefix=StableKVStore.STABLE_PREFIX)

    async def run():
        await migration.warm_transfer()
        # Writes racing the warm phase: an update and a delete that the
        # destination's warm copy does not know about yet.
        assert (await dep.call(101, "src", "put",
                               {"key": "k1", "value": 99})).ok
        assert (await dep.call(101, "src", "delete", {"key": "k2"})).ok
        await migration.catch_up()
        await migration.cutover()

    dep.run_scenario(run())
    assert move.state is MigrationState.DONE
    assert dep.services["dst"].app(2).data == {"k1": 99, "k3": 3}
    assert dep.services["src"].app(1).data == {}
    # The coordinator's crash-safety snapshot was freed at cutover.
    assert dep.nodes[101].stable.keys_with_prefix(
        "placement.migration.") == []


def test_catch_up_ships_keys_created_after_planning():
    """A key born during the warm phase is unknown to the frozen move
    plan; catch-up must still migrate it (and cutover must drop it)."""
    dep = Deployment(seed=38)
    dep.add_service("src", ELASTIC_SPEC, StableKVStore,
                    servers=[1], clients=[101])
    dep.add_service("dst", ELASTIC_SPEC, StableKVStore,
                    servers=[2], clients=[101])

    async def seed():
        for key, value in (("k1", 1), ("k2", 2)):
            assert (await dep.call(101, "src", "put",
                                   {"key": key, "value": value})).ok

    dep.run_scenario(seed())
    target = HashRing(["dst"])           # everything departs src
    move = ShardMove("src", "dst", ["k1", "k2"])
    migration = KeyMigration(dep, 101, [move], epoch=0,
                             stable_prefix=StableKVStore.STABLE_PREFIX,
                             target=target, sources=["src"])

    async def run():
        await migration.warm_transfer()
        assert (await dep.call(101, "src", "put",
                               {"key": "k-new", "value": 42})).ok
        await migration.catch_up()
        await migration.cutover()

    dep.run_scenario(run())
    assert dep.services["dst"].app(2).data == {"k1": 1, "k2": 2,
                                               "k-new": 42}
    assert dep.services["src"].app(1).data == {}
    assert "k-new" in move.keys          # cutover dropped the real set


def test_unplanned_departures_get_their_own_move():
    """A source with no planned move still sheds keys created during
    the migration whose range belongs elsewhere under the target ring."""
    dep = Deployment(seed=39)
    dep.add_service("src", ELASTIC_SPEC, StableKVStore,
                    servers=[1], clients=[101])
    dep.add_service("dst", ELASTIC_SPEC, StableKVStore,
                    servers=[2], clients=[101])
    migration = KeyMigration(dep, 101, [], epoch=0,
                             stable_prefix=StableKVStore.STABLE_PREFIX,
                             target=HashRing(["dst"]), sources=["src"])

    async def run():
        await migration.warm_transfer()  # no planned moves: a no-op
        assert (await dep.call(101, "src", "put",
                               {"key": "late", "value": "v"})).ok
        await migration.catch_up()
        await migration.cutover()

    dep.run_scenario(run())
    assert dep.services["dst"].app(2).data == {"late": "v"}
    assert dep.services["src"].app(1).data == {}
    assert [(m.source, m.dest) for m in migration.moves] == [("src",
                                                              "dst")]


def test_keys_created_during_resize_are_not_lost():
    """The high-severity review scenario: puts that create brand-new
    keys while a grow migration runs must all be readable afterward."""
    dep = Deployment(seed=37)
    plane, kv = build_elastic_kv(dep, 3)
    write_keys(dep, kv, 10)
    acked = {}

    async def workload():
        for i in range(40):
            key = f"new-{i}"
            result = await kv.put(key, i)
            if result.ok:
                acked[key] = i
            await dep.runtime.sleep(0.005)

    async def scenario():
        work = dep.runtime.spawn(workload(), name="workload")
        await dep.runtime.sleep(0.01)
        await plane.add_shard()
        await dep.runtime.join(work)

    dep.run_scenario(scenario(), extra_time=1.0)
    assert acked, "the workload never got a write through"

    async def read():
        for key, value in acked.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, acked)


def test_park_waits_for_inflight_calls_to_drain():
    """A call that passed the gate before parking must land before the
    catch-up snapshot: _drain_inflight blocks until it completes."""
    dep = Deployment(seed=35)
    plane, kv = build_elastic_kv(dep, 2)
    write_keys(dep, kv, 4)
    key = "key-0"
    order = []

    async def slow_put():
        order.append("put-start")
        result = await kv.put(key, "late", delay=0.3)
        order.append("put-done")
        return result

    async def scenario():
        task = dep.runtime.spawn(slow_put(), name="slow-put")
        await dep.runtime.sleep(0.05)     # in flight, gate still open
        plane._park({key})
        await plane._drain_inflight()
        order.append("drained")
        plane._release()
        assert (await dep.runtime.join(task)).ok

    dep.run_scenario(scenario())
    assert order == ["put-start", "put-done", "drained"]


def test_slow_write_racing_a_resize_is_never_dropped():
    """End-to-end version: an acknowledged slow put issued just before
    a shrink must survive the cutover's drop_keys."""
    dep = Deployment(seed=40)
    plane, kv = build_elastic_kv(dep, 3)
    writes = write_keys(dep, kv, 12)
    victim_key = next(k for k in sorted(writes)
                      if plane.ring.route(k) == "shard-1")
    results = []

    async def slow_put():
        results.append(await kv.put(victim_key, "late", delay=0.4))

    async def scenario():
        task = dep.runtime.spawn(slow_put(), name="slow-put")
        await dep.runtime.sleep(0.01)
        await plane.remove_shard("shard-1")
        await dep.runtime.join(task)

    dep.run_scenario(scenario(), extra_time=1.0)
    assert results and results[0].ok

    async def read():
        result = await kv.get(victim_key)
        assert result.ok and result.args == "late"

    dep.run_scenario(read())
    writes[victim_key] = "late"
    assert_single_ownership(dep, plane, writes)


def test_drain_salvages_a_dead_shard_from_stable_store():
    dep = Deployment(seed=27)
    plane, kv = build_elastic_kv(dep, 2)
    writes = write_keys(dep, kv, 20)
    victim = dep.services["shard-1"]
    dep.crash(victim.server_pids[0])

    dep.run_scenario(plane.drain_dead_shard("shard-1"))

    assert plane.shards == ["shard-0"]
    assert dep.metrics.value("placement.migration.salvages") >= 1
    assert dep.metrics.value("placement.drains") == 1

    async def read():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read())


def test_rejoining_shard_cannot_resurrect_stale_keys():
    dep = Deployment(seed=28)
    plane, kv = build_elastic_kv(dep, 2)
    writes = write_keys(dep, kv, 20)
    victim = dep.services["shard-1"]
    stale = next(k for k in sorted(writes)
                 if plane.ring.route(k) == "shard-1")
    dep.crash(victim.server_pids[0])
    dep.run_scenario(plane.drain_dead_shard("shard-1"))

    async def overwrite():    # the key lives on, owned by the survivor
        assert (await kv.put(stale, "fresh")).ok

    dep.run_scenario(overwrite())
    dep.recover(victim.server_pids[0])
    # Recovery reloaded the shard's pre-crash stable state; rejoining
    # must wipe it before any key range migrates back.
    assert stale in victim.app(victim.server_pids[0]).data
    dep.run_scenario(plane.add_shard("shard-1"))

    async def read():
        result = await kv.get(stale)
        assert result.ok and result.args == "fresh"

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)


def test_rejoin_while_down_scrubs_stale_stable_state():
    """add_shard on a shard whose servers are still down must scrub its
    stable cells directly (the wipe RPC fails); a later recovery cannot
    resurrect pre-crash keys."""
    dep = Deployment(seed=41)
    plane, kv = build_elastic_kv(dep, 2)
    writes = write_keys(dep, kv, 20)
    victim = dep.services["shard-1"]
    pid = victim.server_pids[0]
    stale = next(k for k in sorted(writes)
                 if plane.ring.route(k) == "shard-1")
    dep.crash(pid)
    dep.run_scenario(plane.drain_dead_shard("shard-1"))

    async def overwrite():
        assert (await kv.put(stale, "fresh")).ok

    dep.run_scenario(overwrite())

    async def rejoin():
        # Still down: migrating ranges back must fail loudly, but only
        # after the stale stable cells were scrubbed.
        with pytest.raises(MigrationError):
            await plane.add_shard("shard-1")

    dep.run_scenario(rejoin())
    node = dep.nodes[pid]
    assert node.stable.keys_with_prefix(StableKVStore.STABLE_PREFIX) == []
    dep.recover(pid)
    assert victim.app(pid).data == {}        # nothing resurrected

    async def read():
        result = await kv.get(stale)
        assert result.ok and result.args == "fresh"

    dep.run_scenario(read())


def test_stable_kvstore_rebind_does_not_stack_recover_listeners():
    dep = Deployment(seed=42)
    svc = dep.add_service("kv", ELASTIC_SPEC, StableKVStore,
                          servers=[1], clients=[101])
    node = dep.nodes[1]
    app = svc.app(1)
    before = len(node.recover_listeners)
    app.bind(node)
    app.bind(node)
    assert len(node.recover_listeners) == before


# ---------------------------------------------------------------------------
# Membership-driven rebinding
# ---------------------------------------------------------------------------


def test_driver_shrinks_and_regrows_bindings():
    dep = Deployment(seed=30, membership="oracle")
    dep.add_service("kv", ELASTIC_SPEC, StableKVStore,
                    servers=[1, 2, 3], clients=[101])
    dep.auto_rebind()

    dep.crash(3)
    assert dep.registry.lookup("kv").members == (1, 2)
    assert dep.metrics.value("placement.rebind.shrink") == 1

    async def during():
        result = await dep.call(101, "kv", "put", {"key": "a", "value": 1})
        assert result.ok

    dep.run_scenario(during())

    dep.recover(3)
    assert dep.registry.lookup("kv").members == (1, 2, 3)
    assert dep.metrics.value("placement.rebind.regrow") == 1


def test_driver_regrow_can_be_disabled():
    dep = Deployment(seed=31, membership="oracle")
    dep.add_service("kv", ELASTIC_SPEC, StableKVStore,
                    servers=[1, 2], clients=[101])
    dep.auto_rebind(regrow=False)
    dep.crash(2)
    dep.recover(2)
    assert dep.registry.lookup("kv").members == (1,)


def test_heartbeat_watch_fires_once_per_state_change():
    dep = Deployment(seed=32, membership="heartbeat",
                     heartbeat_interval=0.05, suspect_after=3)
    dep.add_service("kv", ELASTIC_SPEC, StableKVStore,
                    servers=[1, 2, 3], clients=[101])
    events = []
    dep.watch_membership(lambda pid, alive: events.append((pid, alive)))
    dep.auto_rebind()
    dep.settle(0.5)
    assert events == []

    dep.crash(3)
    dep.settle(1.0)
    # Three surviving observers suspect node 3; the watcher fired once.
    assert events == [(3, False)]
    assert dep.registry.lookup("kv").members == (1, 2)
    assert dep.metrics.value("placement.rebind.shrink") == 1

    dep.recover(3)
    dep.settle(1.0)
    assert events == [(3, False), (3, True)]
    assert dep.registry.lookup("kv").members == (1, 2, 3)


def test_driver_drains_a_fully_dead_shard():
    dep = Deployment(seed=33, membership="oracle")
    plane, kv = build_elastic_kv(dep, 3)
    writes = write_keys(dep, kv, 24)
    dep.auto_rebind(plane=plane)

    dep.crash(dep.services["shard-2"].server_pids[0])
    dep.settle(5.0)            # let the spawned drain run

    assert plane.shards == ["shard-0", "shard-1"]
    assert dep.metrics.value("placement.drains") == 1

    async def read():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read())
    assert_single_ownership(dep, plane, writes)


# ---------------------------------------------------------------------------
# Acceptance: resize under workload with a shard killed mid-migration
# ---------------------------------------------------------------------------


def test_resize_under_workload_survives_shard_death():
    dep = Deployment(seed=34, membership="oracle")
    plane, kv = build_elastic_kv(dep, 4)
    dep.auto_rebind(plane=plane)
    acked = {}

    async def workload():
        for i in range(50):
            key = f"key-{i}"
            result = await kv.put(key, i)
            if result.ok:
                acked[key] = i
            await dep.runtime.sleep(0.02)

    async def chaos():
        await dep.runtime.sleep(0.1)
        grow = dep.runtime.spawn(plane.add_shard(), name="grow")
        await dep.runtime.sleep(0.03)   # mid-migration
        dep.crash(dep.services["shard-1"].server_pids[0])
        await dep.runtime.join(grow)
        for _ in range(200):            # wait out the automatic drain
            if "shard-1" not in plane.ring:
                break
            await dep.runtime.sleep(0.1)

    async def scenario():
        work = dep.runtime.spawn(workload(), name="workload")
        havoc = dep.runtime.spawn(chaos(), name="chaos")
        await dep.runtime.join(work)
        await dep.runtime.join(havoc)

    dep.run_scenario(scenario(), extra_time=5.0)

    assert "shard-1" not in plane.ring          # drained automatically
    assert "shard-4" in plane.ring              # grow completed
    assert acked, "the workload never got a write through"

    async def verify():
        for key, value in acked.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(verify())
    # No key — acked or not — is owned by two live shards.
    every_key = dep.run_scenario(kv.keys())
    assert_single_ownership(dep, plane, every_key)
    assert set(acked) <= set(every_key)
