"""The live adaptation plane: guarded micro-protocol switches on
running groups.

Covers the switch engine end to end (park/drain/switch/release with
zero acknowledged-call loss on a Total Order -> FIFO -> Total Order
round trip), kept-instance state preservation, mid-run FIFO gate
seeding, the cross-epoch message fence, drain-timeout aborts that leave
the running composition untouched, plan validation (Figure-4 edges,
replication-mode edges, stale plans) strictly before any handler is
touched, the membership-driven :class:`~repro.adapt.driver.
AdaptationDriver` (degrade/restore with hysteresis), and the
listener-lifecycle fixes every reconfiguration driver now relies on
(``Deployment.unwatch_membership``, ``RebindDriver.close``).
"""

import pytest

from repro import Deployment, LinkSpec, ServiceSpec
from repro.adapt import (
    AdaptationError,
    AdaptationManager,
    AdaptationPlan,
    adaptation_edges,
    validate_plan,
)
from repro.apps import KVStore
from repro.errors import ConfigurationError, DependencyError
from repro.replication import ReplicationManager, primary_backup

LINK = LinkSpec(delay=0.01, jitter=0.0)

TOTAL = ServiceSpec(reliable=True, unique=True, ordering="total",
                    acceptance=2)


def _deploy(spec=TOTAL, *, seed=7, servers=3, clients=1, link=LINK):
    dep = Deployment(seed=seed, default_link=link, keep_trace=False)
    svc = dep.add_service("s", spec, KVStore,
                          servers=servers, clients=clients)
    return dep, svc


async def _puts(dep, pid, n, tag=""):
    ok = 0
    for i in range(n):
        result = await dep.call(pid, "s", "put",
                                {"key": f"{tag}k{i}", "value": i})
        ok += bool(result.ok)
    return ok


# ---------------------------------------------------------------------------
# The switch engine: round trip under load, zero acknowledged-call loss
# ---------------------------------------------------------------------------


def test_round_trip_zero_loss_under_load():
    """Total Order -> FIFO -> Total Order on a live group: every call
    issued across both switches completes OK."""
    dep, svc = _deploy(clients=2)
    issued, completed = [0], [0]
    stop = [False]

    async def lane(pid, lane_no):
        i = 0
        while not stop[0]:
            issued[0] += 1
            result = await dep.call(pid, "s", "put",
                                    {"key": f"l{lane_no}-{i}", "value": i})
            completed[0] += bool(result.ok)
            i += 1

    async def scenario():
        tasks = [dep.spawn_client(pid, lane(pid, n))
                 for n, pid in enumerate(svc.client_pids)]
        await dep.runtime.sleep(0.3)
        degrade = await dep.adapt("s", TOTAL.with_(ordering="fifo"),
                                  reason="test: degrade")
        await dep.runtime.sleep(0.3)
        restore = await dep.adapt("s", TOTAL, reason="test: restore")
        await dep.runtime.sleep(0.3)
        stop[0] = True
        for task in tasks:
            await dep.runtime.join(task)
        return degrade, restore

    degrade, restore = dep.run_scenario(scenario(), extra_time=1.0)
    assert completed[0] == issued[0] > 0
    assert [degrade.epoch, restore.epoch] == [1, 2]
    assert svc.spec == TOTAL
    assert int(dep.metrics.counter("adapt.switches").value) == 2
    # The switch itself is atomic in virtual time: the group was never
    # down for a single virtual second.
    assert degrade.switch_s == restore.switch_s == 0.0
    dep.shutdown()


def test_parked_calls_resume_under_new_composition():
    """Calls issued while a switch drains park at the gate and complete
    after the release — none are rejected, none are lost."""
    dep, svc = _deploy(clients=2)
    results = []

    async def scenario():
        # Keep calls in flight so the drain takes a few polls, and keep
        # issuing while the gate is closed.
        tasks = [dep.spawn_client(pid, _puts(dep, pid, 6, tag=f"p{pid}"))
                 for pid in svc.client_pids]
        await dep.runtime.sleep(0.015)      # calls now mid-flight
        report = await dep.adapt("s", TOTAL.with_(ordering="fifo"))
        for task in tasks:
            results.append(await dep.runtime.join(task))
        return report

    report = dep.run_scenario(scenario(), extra_time=1.0)
    assert results == [6, 6]
    assert report.parked >= 1
    assert report.drain_s > 0.0
    assert int(dep.metrics.counter("adapt.parked").value) >= report.parked
    # The gate is gone: nothing parks afterwards.
    assert dep.adaptation._gates == {}
    dep.shutdown()


def test_kept_instances_survive_with_state():
    """Parameter-free protocols present on both sides keep their running
    instances — reply stores and call-id cursors included."""
    dep, svc = _deploy()
    pid = svc.client
    server = svc.server_pids[0]
    before_server = {m.name: m for m in svc.grpc(server).micro_protocols}
    before_client = {m.name: m for m in svc.grpc(pid).micro_protocols}

    async def scenario():
        assert await _puts(dep, pid, 4, tag="a") == 4
        cursor = svc.grpc(pid).micro("RPC_Main").next_call_id
        assert cursor > 1
        report = await dep.adapt("s", TOTAL.with_(ordering="fifo"))
        assert svc.grpc(pid).micro("RPC_Main").next_call_id == cursor
        assert await _puts(dep, pid, 4, tag="b") == 4
        return report

    report = dep.run_scenario(scenario(), extra_time=1.0)
    for name in ("Unique_Execution", "RPC_Main", "Acceptance"):
        assert name in report.kept
    after_server = {m.name: m for m in svc.grpc(server).micro_protocols}
    after_client = {m.name: m for m in svc.grpc(pid).micro_protocols}
    # Kept: the very same objects.  Swapped: Total Order out, FIFO in.
    assert after_server["Unique_Execution"] is \
        before_server["Unique_Execution"]
    assert after_client["RPC_Main"] is before_client["RPC_Main"]
    assert "Total_Order" in before_server
    assert "Total_Order" not in after_server
    assert "FIFO_Order" in after_server
    dep.shutdown()


def test_fresh_fifo_gate_is_seeded_from_live_cursors():
    """A FIFO gate installed mid-run must admit the *next* call id, not
    wait forever for ids that completed under the old composition."""
    dep, svc = _deploy(ServiceSpec(reliable=True, unique=True,
                                   ordering="none"))
    pid = svc.client

    async def scenario():
        assert await _puts(dep, pid, 5, tag="pre") == 5
        await dep.adapt("s", svc.spec.with_(ordering="fifo"))
        # Would park forever on a gate seeded at call id 1.
        assert await _puts(dep, pid, 5, tag="post") == 5

    dep.run_scenario(scenario(), extra_time=1.0)
    assert svc.spec.ordering == "fifo"
    dep.shutdown()


def test_fence_drops_cross_epoch_messages():
    """Messages still in flight toward a slow member when the epoch
    bumps are fenced on arrival — and nothing is lost: reliable clients
    retransmit under the new epoch."""
    dep, svc = _deploy(clients=2)
    leader = max(svc.server_pids)
    done = []

    async def scenario():
        tasks = [dep.spawn_client(pid, _puts(dep, pid, 8, tag=f"f{pid}"))
                 for pid in svc.client_pids]
        dep.make_slow(leader, 0.3)          # ORDER traffic now lingers
        await dep.runtime.sleep(0.05)
        await dep.adapt("s", TOTAL.with_(ordering="fifo"))
        for task in tasks:
            done.append(await dep.runtime.join(task))

    dep.run_scenario(scenario(), extra_time=2.0)
    assert done == [8, 8]
    fence = svc.grpc(leader).micro("Adaptation_Fence")
    assert fence.dropped > 0
    assert int(dep.metrics.counter("adapt.fence.dropped").value) > 0
    dep.shutdown()


def test_drain_timeout_aborts_without_touching_anything():
    """A group that cannot quiesce in time aborts the switch before any
    handler is touched: same instances, same spec, epoch unbumped, and
    the parked calls are released."""
    dep, svc = _deploy(link=LinkSpec(delay=0.2, jitter=0.0))
    pid = svc.client
    before = {p: list(g.micro_protocols) for p, g in svc.grpcs.items()}

    async def scenario():
        task = dep.spawn_client(pid, _puts(dep, pid, 1))
        await dep.runtime.sleep(0.05)       # the call is mid-flight
        with pytest.raises(AdaptationError, match="did not quiesce"):
            await dep.adapt("s", TOTAL.with_(ordering="fifo"),
                            drain_timeout=0.1)
        assert await dep.runtime.join(task) == 1
        # The aborted switch left no gate behind; a later switch works.
        report = await dep.adapt("s", TOTAL.with_(ordering="fifo"))
        return report

    report = dep.run_scenario(scenario(), extra_time=2.0)
    assert int(dep.metrics.counter("adapt.aborts").value) == 1
    assert report.epoch == 1                # the abort consumed no epoch
    dep.shutdown()
    # At abort time nothing had been swapped (checked via identity on
    # the later successful switch's kept instances).
    assert all(g.adapt_epoch == 1 for g in svc.grpcs.values())
    for p, old_list in before.items():
        names = {m.name for m in old_list}
        assert "Total_Order" in names       # pre-abort snapshot intact


def test_illegal_target_rejected_before_any_handler():
    """An illegal target dies in validation with the Figure-4 edge named
    — composition, spec and epoch untouched."""
    dep, svc = _deploy()
    before = {p: list(g.micro_protocols) for p, g in svc.grpcs.items()}

    async def scenario():
        with pytest.raises(DependencyError, match="Unique_Execution"):
            await dep.adapt("s", TOTAL.with_(unique=False))
        with pytest.raises(DependencyError, match="Bounded_Termination"):
            await dep.adapt("s", TOTAL.with_(bounded=1.0))

    dep.run_scenario(scenario(), extra_time=0.1)
    assert svc.spec == TOTAL
    assert int(dep.metrics.counter("adapt.plans.rejected").value) == 2
    assert int(dep.metrics.counter("adapt.switches").value) == 0
    for p, old_list in before.items():
        assert svc.grpcs[p].micro_protocols == old_list
        assert svc.grpcs[p].adapt_epoch == 0
    dep.shutdown()


def test_stale_and_malformed_plans_rejected():
    dep, svc = _deploy()
    manager = AdaptationManager.ensure(dep)
    assert AdaptationManager.ensure(dep) is manager

    stale = AdaptationPlan(
        service="s", to_spec=TOTAL.with_(ordering="fifo"),
        from_spec=TOTAL.with_(acceptance=1))   # not what is running

    async def scenario():
        with pytest.raises(ConfigurationError, match="stale"):
            await dep.adapt("s", stale)
        with pytest.raises(ConfigurationError, match="submitted for"):
            await dep.adapt("s", stale.with_(service="other"))
        with pytest.raises(ConfigurationError, match="drain_timeout"):
            await dep.adapt("s", TOTAL.with_(ordering="fifo"),
                            drain_timeout=-1.0)
        with pytest.raises(ConfigurationError, match="ServiceSpec"):
            await dep.adapt("s", "fifo")

    dep.run_scenario(scenario(), extra_time=0.1)
    assert svc.spec == TOTAL
    dep.shutdown()


def test_one_switch_at_a_time_per_service():
    dep, svc = _deploy(link=LinkSpec(delay=0.1, jitter=0.0))
    pid = svc.client

    async def scenario():
        call = dep.spawn_client(pid, _puts(dep, pid, 1))
        await dep.runtime.sleep(0.02)       # keep the drain busy
        first = dep.runtime.spawn(
            dep.adapt("s", TOTAL.with_(ordering="fifo")), name="first")
        await dep.runtime.sleep(0.01)
        with pytest.raises(AdaptationError, match="mid-adaptation"):
            await dep.adapt("s", TOTAL.with_(ordering="none"))
        await dep.runtime.join(call)
        await dep.runtime.join(first)

    dep.run_scenario(scenario(), extra_time=2.0)
    assert svc.spec.ordering == "fifo"
    assert int(dep.metrics.counter("adapt.switches").value) == 1
    dep.shutdown()


def test_adaptation_edges_shape():
    edges = adaptation_edges()
    assert all(len(edge) == 2 for edge in edges)
    deps = [d for d, _ in edges]
    assert "Adaptation_Switch" in deps
    prereqs = " ".join(p for _, p in edges)
    assert "Figure 4" in prereqs and "Quiesced_Group" in prereqs


def test_validate_plan_standalone():
    fifo = TOTAL.with_(ordering="fifo")
    validate_plan(AdaptationPlan(service="s", to_spec=fifo),
                  current=TOTAL)
    with pytest.raises(DependencyError, match="Reliable_Communication"):
        validate_plan(
            AdaptationPlan(service="s",
                           to_spec=fifo.with_(reliable=False,
                                              unique=False)),
            current=TOTAL)


# ---------------------------------------------------------------------------
# Replica groups: the PR-8 mode edges gate adaptation too
# ---------------------------------------------------------------------------


def test_passive_group_rejects_ordered_target():
    rspec = primary_backup(3)
    dep = Deployment(seed=11, default_link=LINK, keep_trace=False)
    svc = dep.add_service("s", rspec.service_spec(), KVStore,
                          servers=3, clients=1)
    group = ReplicationManager.ensure(dep).replicate("s", rspec)
    before = {p: list(g.micro_protocols) for p, g in svc.grpcs.items()}

    async def scenario():
        assert await _puts(dep, svc.client, 3) == 3
        with pytest.raises(DependencyError, match="Passive_Replication"):
            await dep.adapt("s", svc.spec.with_(ordering="fifo"))
        # A mode-legal change goes through — and rspec follows the
        # composition that now actually runs.
        report = await dep.adapt("s", svc.spec.with_(bounded=5.0))
        assert await _puts(dep, svc.client, 3, tag="b") == 3
        return report

    report = dep.run_scenario(scenario(), extra_time=1.0)
    assert report.epoch == 1
    assert group.rspec.spec.bounded == 5.0
    assert group.rspec.mode == "passive"
    # The rejected plan touched nothing.
    names = {m.name for m in before[svc.server_pids[0]]}
    assert "FIFO_Order" not in names
    dep.shutdown()


# ---------------------------------------------------------------------------
# The membership-driven driver: degrade / restore with hysteresis
# ---------------------------------------------------------------------------


def test_driver_degrades_and_restores():
    dep, svc = _deploy()
    driver = dep.auto_adapt(hysteresis=0.05, heal_grace=0.05)
    victim = svc.server_pids[0]

    async def scenario():
        assert await _puts(dep, svc.client, 3) == 3
        dep.crash(victim)
        await dep.runtime.sleep(1.0)
        assert svc.spec.ordering == "fifo"
        assert driver.degraded_services() == {"s"}
        dep.recover(victim)
        await dep.runtime.sleep(1.0)

    dep.run_scenario(scenario(), extra_time=1.0)
    assert svc.spec == TOTAL                 # baseline restored
    assert driver.degraded_services() == set()
    assert int(dep.metrics.counter("adapt.policy.degrade").value) == 1
    assert int(dep.metrics.counter("adapt.policy.restore").value) == 1
    dep.shutdown()


def test_driver_hysteresis_swallows_flaps():
    """A crash-recover flap inside the hysteresis window cancels the
    pending degrade: a flapping detector changes nothing."""
    dep, svc = _deploy()
    dep.auto_adapt(hysteresis=0.5, heal_grace=0.5)
    victim = svc.server_pids[0]

    async def scenario():
        dep.crash(victim)
        await dep.runtime.sleep(0.1)        # < hysteresis
        dep.recover(victim)
        await dep.runtime.sleep(2.0)

    dep.run_scenario(scenario(), extra_time=0.5)
    assert svc.spec == TOTAL
    assert int(dep.metrics.counter("adapt.policy.cancelled").value) >= 1
    assert int(dep.metrics.counter("adapt.switches").value) == 0
    dep.shutdown()


def test_driver_raises_acceptance_during_suspicion():
    """The degrade policy composes with automatic rebinding: suspicion
    shrinks the bound group (so no call waits on the dead member's
    replies) *and* degrades the composition."""
    dep, svc = _deploy()
    dep.auto_rebind()
    dep.auto_adapt(hysteresis=0.05, heal_grace=0.05,
                   suspicion_acceptance=1)
    victim = svc.server_pids[0]

    async def scenario():
        dep.crash(victim)
        await dep.runtime.sleep(1.0)
        assert svc.spec.ordering == "fifo"
        assert svc.spec.acceptance == 1
        assert await _puts(dep, svc.client, 3) == 3
        dep.recover(victim)
        await dep.runtime.sleep(1.0)

    dep.run_scenario(scenario(), extra_time=1.0)
    assert svc.spec == TOTAL
    dep.shutdown()


def test_driver_rejects_bad_degrade_ordering():
    dep, _ = _deploy()
    with pytest.raises(AdaptationError, match="degrade_ordering"):
        dep.auto_adapt(degrade_ordering="total")
    dep.shutdown()


# ---------------------------------------------------------------------------
# Listener lifecycle: unwatch_membership and driver close()
# ---------------------------------------------------------------------------


def test_unwatch_membership_detaches_fabric_watcher():
    dep, _ = _deploy()
    seen = []
    watcher = seen.append
    before = len(dep.fabric._membership_watchers)
    dep.watch_membership(lambda pid, alive: seen.append((pid, alive)))
    dep.unwatch_membership(watcher)          # never attached: a no-op
    assert len(dep.fabric._membership_watchers) == before + 1
    dep.shutdown()


def test_auto_adapt_reinstall_closes_previous_driver():
    dep, _ = _deploy()
    first = dep.auto_adapt()
    watchers = len(dep.fabric._membership_watchers)
    second = dep.auto_adapt()
    assert first is not second and first._closed
    # The replacement took the slot, not a second subscription.
    assert len(dep.fabric._membership_watchers) == watchers
    dep.shutdown()
    assert second._closed                    # shutdown closes the driver


def test_rebind_driver_close_and_reinstall():
    dep, _ = _deploy()
    first = dep.auto_rebind()
    watchers = len(dep.fabric._membership_watchers)
    second = dep.auto_rebind()
    assert first is not second and first._closed
    assert len(dep.fabric._membership_watchers) == watchers
    # A closed driver ignores later membership events.
    first._on_change(1, False)
    dep.shutdown()


def test_closed_adapt_driver_ignores_membership():
    dep, svc = _deploy()
    driver = dep.auto_adapt(hysteresis=0.05)
    driver.close()
    driver.close()                           # idempotent

    async def scenario():
        dep.crash(svc.server_pids[0])
        await dep.runtime.sleep(1.0)

    dep.run_scenario(scenario(), extra_time=0.5)
    assert svc.spec == TOTAL                 # no degrade fired
    assert int(dep.metrics.counter("adapt.switches").value) == 0
    dep.shutdown()
