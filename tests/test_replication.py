"""Replicated shard groups: per-shard configurable consistency.

Covers the :class:`~repro.replication.spec.ReplicaSpec` validation story
(Figure-4 graph plus the replication-mode edges, enforced at deployment
build time), active fan-out with round-robin read narrowing (and the
ordered-composition rule that disables it), passive primary-backup state
transfer, deterministic election / promotion / demotion, failover under
in-flight writes with zero acknowledged-write loss, reply-cache retry
dedup across a promotion, resync of recovered replicas, the
:class:`~repro.placement.driver.RebindDriver`'s drain-averting revive,
and replica groups under the elastic placement plane.
"""

import pytest

from repro import Deployment, ServiceSpec, build_elastic_kv
from repro.apps import KVStore, StableKVStore, build_sharded_kv
from repro.errors import ConfigurationError, DependencyError, ReproError
from repro.replication import (
    ReplicaSpec,
    ReplicationManager,
    active_replicas,
    primary_backup,
)
from repro.replication.spec import forward_state, replication_edges


# ---------------------------------------------------------------------------
# ReplicaSpec validation: Figure 4 plus the replication-mode edges
# ---------------------------------------------------------------------------


def test_presets_validate():
    active_replicas(3).service_spec()
    active_replicas(1, ordering="total").service_spec()
    primary_backup(3).service_spec()
    primary_backup(2, bounded=1.0, read_from="primary").service_spec()


def test_bad_shape_is_a_configuration_error():
    with pytest.raises(ConfigurationError):
        ReplicaSpec(replicas=0).service_spec()
    with pytest.raises(ConfigurationError):
        ReplicaSpec(mode="chain").service_spec()
    with pytest.raises(ConfigurationError):
        ReplicaSpec(read_from="nearest").service_spec()


def test_passive_requires_acceptance_one():
    spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                       ordering="none", acceptance=2)
    with pytest.raises(DependencyError, match="[Aa]cceptance"):
        ReplicaSpec(mode="passive", spec=spec).service_spec()


@pytest.mark.parametrize("ordering", ["fifo", "total"])
def test_passive_rejects_ordered_delivery(ordering):
    # Writes execute on the primary alone; an ordering gate at the
    # backups would wait forever for calls they will never see.
    spec = ServiceSpec(reliable=True, unique=True, execution="serial",
                       ordering=ordering, acceptance=1)
    with pytest.raises(DependencyError, match="Passive_Replication"):
        ReplicaSpec(mode="passive", spec=spec).service_spec()


def test_active_group_requires_unique_execution():
    spec = ServiceSpec(reliable=True, execution="serial",
                       ordering="none", acceptance=1)
    with pytest.raises(DependencyError, match="Unique_Execution"):
        ReplicaSpec(mode="active", replicas=3, spec=spec).service_spec()
    # A single replica has nothing to diverge from.
    ReplicaSpec(mode="active", replicas=1, spec=spec).service_spec()


def test_replication_edges_shape_matches_figure4():
    edges = replication_edges()
    assert all(len(edge) == 2 for edge in edges)
    assert ("Passive_Replication", "Acceptance(1)") in edges


def test_reads_narrow_only_without_ordering():
    assert active_replicas(3).reads_narrow
    assert not active_replicas(3, ordering="fifo").reads_narrow
    assert not active_replicas(3, ordering="total").reads_narrow


def test_forward_state_translations():
    assert forward_state("put", {"key": "k", "value": 7}) == \
        ("ingest", {"entries": {"k": 7}})
    assert forward_state("delete", {"key": "k"}) == \
        ("drop_keys", {"keys": ["k"]})
    assert forward_state("ingest", {"entries": {"a": 1}}) == \
        ("ingest", {"entries": {"a": 1}})
    assert forward_state("compact", {}) is None


def test_build_fails_whole_deployment_on_illegal_shard():
    dep = Deployment(seed=40)
    bad = ReplicaSpec(mode="passive", spec=ServiceSpec(
        reliable=True, unique=True, execution="serial",
        ordering="fifo", acceptance=1))
    with pytest.raises(DependencyError):
        build_sharded_kv(dep, 3,
                         replication=[active_replicas(2), bad,
                                      active_replicas(2)])
    # Shard 0 validated fine, but nothing was deployed.
    assert dep.services == {}


def test_replication_excludes_manual_spec_arguments():
    dep = Deployment(seed=40)
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 2, replication=active_replicas(2),
                         servers_per_shard=2)
    with pytest.raises(ReproError):
        build_sharded_kv(dep, 2, replication=[active_replicas(2)])


def test_replica_count_must_match_deployed_servers():
    dep = Deployment(seed=41)
    dep.add_service("s", active_replicas(3).service_spec(), KVStore,
                    servers=2, clients=1)
    with pytest.raises(ReproError, match="2 servers"):
        ReplicationManager.ensure(dep).replicate("s", active_replicas(3))


def test_one_group_per_service_and_one_manager_per_deployment():
    dep = Deployment(seed=41)
    dep.add_service("s", active_replicas(2).service_spec(), KVStore,
                    servers=2, clients=1)
    manager = ReplicationManager.ensure(dep)
    assert ReplicationManager.ensure(dep) is manager
    with pytest.raises(ReproError):
        ReplicationManager(dep)
    manager.replicate("s", active_replicas(2))
    with pytest.raises(ReproError):
        manager.replicate("s", active_replicas(2))


# ---------------------------------------------------------------------------
# Active replication: fan-out writes, narrowed reads
# ---------------------------------------------------------------------------


def test_active_writes_reach_every_replica():
    dep = Deployment(seed=42)
    kv = build_sharded_kv(dep, 1, replication=active_replicas(3))

    async def scenario():
        for i in range(5):
            assert (await kv.put(f"k{i}", i)).ok

    dep.run_scenario(scenario())
    svc = dep.services["shard-0"]
    expected = {f"k{i}": i for i in range(5)}
    for pid in svc.server_pids:
        assert svc.app(pid).data == expected


def test_active_reads_round_robin_over_replicas():
    dep = Deployment(seed=42)
    kv = build_sharded_kv(dep, 1, replication=active_replicas(3))
    group = dep.replication.group("shard-0")
    targets = []
    original = group._read_target

    def spy(bound):
        narrowed = original(bound)
        targets.append(tuple(narrowed.members))
        return narrowed
    group._read_target = spy

    async def scenario():
        assert (await kv.put("k", 1)).ok
        for _ in range(6):
            assert (await kv.get("k")).args == 1

    dep.run_scenario(scenario())
    assert len(targets) == 6
    assert all(len(t) == 1 for t in targets)            # narrowed
    assert set(t[0] for t in targets) == set(group.members)
    assert dep.metrics.value("repl.reads.routed") == 6


def test_ordered_composition_serves_reads_through_full_group():
    """Regression: under FIFO ordering a read narrowed to one replica
    consumes a per-client sequence number the other replicas never see,
    parking every later fan-out write forever.  Ordered compositions
    must send reads to the whole group instead."""
    dep = Deployment(seed=43)
    kv = build_sharded_kv(dep, 1,
                          replication=active_replicas(3, ordering="fifo"))

    async def scenario():
        for i in range(4):                # write-read interleave
            assert (await kv.put(f"k{i}", i)).ok
            assert (await kv.get(f"k{i}")).args == i

    dep.run_scenario(scenario())
    assert dep.metrics.value("repl.reads.routed") == 0   # never narrowed


def test_active_group_survives_replica_crash():
    dep = Deployment(seed=44, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=active_replicas(3))
    dep.auto_rebind()

    async def before():
        for i in range(4):
            assert (await kv.put(f"k{i}", i)).ok

    dep.run_scenario(before())
    victim = dep.services["shard-0"].server_pids[0]
    dep.crash(victim)
    assert dep.replication.live_members("shard-0") == \
        [p for p in dep.services["shard-0"].server_pids if p != victim]

    async def after():
        for i in range(4):
            result = await kv.get(f"k{i}")
            assert result.ok and result.args == i
        assert (await kv.put("late", 9)).ok

    dep.run_scenario(after())
    assert dep.metrics.value("repl.shrinks") == 1


# ---------------------------------------------------------------------------
# Passive replication: primary-backup state transfer
# ---------------------------------------------------------------------------


def test_passive_backups_ingest_state_not_procedures():
    dep = Deployment(seed=45)
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    svc = dep.services["shard-0"]
    assert group.primary == max(svc.server_pids)   # the paper's leader

    async def scenario():
        assert (await kv.put("a", 1)).ok
        assert (await kv.put("b", 2)).ok
        assert (await kv.delete("a")).ok

    dep.run_scenario(scenario())
    primary_log = svc.app(group.primary).apply_log
    assert [kind for kind, *_ in primary_log] == ["put", "put", "delete"]
    for pid in svc.server_pids:
        assert svc.app(pid).data == {"b": 2}       # all converged
        if pid != group.primary:
            # Backups receive the *resulting state*, never the write op.
            kinds = {kind for kind, *_ in svc.app(pid).apply_log}
            assert kinds <= {"ingest", "drop"}
    assert dep.metrics.value("repl.sync.calls") == 6   # 3 writes x 2


def test_passive_reads_can_pin_to_the_primary():
    dep = Deployment(seed=45)
    kv = build_sharded_kv(
        dep, 1, replication=primary_backup(3, read_from="primary"))
    group = dep.replication.group("shard-0")
    targets = []
    original = group._read_target

    def spy(bound):
        narrowed = original(bound)
        targets.append(tuple(narrowed.members))
        return narrowed
    group._read_target = spy

    async def scenario():
        assert (await kv.put("a", 1)).ok
        for _ in range(3):
            assert (await kv.get("a")).args == 1

    dep.run_scenario(scenario())
    assert targets == [(group.primary,)] * 3


def test_promotion_is_deterministic_and_taped():
    dep = Deployment(seed=46, membership="oracle", observatory=True)
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    pids = sorted(group.members)

    async def write():
        assert (await kv.put("a", 1)).ok

    dep.run_scenario(write())
    assert group.primary == pids[-1]
    dep.crash(pids[-1])
    assert group.primary == pids[-2]       # next-largest in-sync pid
    dep.crash(pids[-2])
    assert group.primary == pids[-3]
    assert dep.metrics.value("repl.promotions") == 2
    tape = [fields for (_seq, _t, kind, fields) in dep.flight.entries()
            if kind == "repl-promote"]
    assert [fields["primary"] for fields in tape] == \
        [pids[-2], pids[-3]]

    async def read():
        assert (await kv.get("a")).args == 1   # sole survivor serves

    dep.run_scenario(read())


def test_passive_failover_loses_no_acknowledged_write():
    dep = Deployment(seed=47, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    writes = {f"k{i}": i for i in range(8)}

    async def phase1():
        for key, value in writes.items():
            assert (await kv.put(key, value)).ok

    dep.run_scenario(phase1())
    dep.crash(group.primary)

    async def phase2():
        for key, value in writes.items():      # every ack survives
            result = await kv.get(key)
            assert result.ok and result.args == value, key
        assert (await kv.put("post", 99)).ok   # new primary writes

    dep.run_scenario(phase2())
    assert dep.metrics.value("repl.promotions") == 1


def test_failover_under_in_flight_write_retries_transparently():
    """Crash the primary while a write executes on it: the write
    surfaces as a TIMEOUT inside the group, is parked until promotion,
    and is re-issued against the new primary — the caller just sees OK.
    """
    dep = Deployment(seed=48, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    old_primary = group.primary

    async def scenario():
        async def slow_write():
            # Executes for 1.0s of virtual time on the primary.
            return await kv.put("inflight", 1, delay=1.0)
        handle = dep.runtime.spawn(slow_write(), name="writer")
        await dep.runtime.sleep(0.3)          # write is now executing
        dep.crash(old_primary)                # ... and its server dies
        result = await dep.runtime.join(handle)
        assert result.ok                      # transparently retried
        assert (await kv.get("inflight")).args == 1

    dep.run_scenario(scenario())
    assert group.primary != old_primary
    assert dep.metrics.value("repl.failover.retries") == 1
    # The retry executed exactly once on the new primary.
    svc = dep.services["shard-0"]
    log = svc.app(group.primary).apply_log
    assert [e for e in log if e[0] == "put" and e[1] == "inflight"] == \
        [("put", "inflight", 1)]


def test_retry_of_dedups_across_promotion():
    """A client retry (``retry_of=``) of an acknowledged write must be
    answered from the reply cache even when the original primary has
    since crashed and a backup was promoted — never re-executed."""
    dep = Deployment(seed=49, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    svc = dep.services["shard-0"]
    first = {}

    async def phase1():
        first["result"] = await kv.put("k", "v1")
        assert first["result"].ok

    dep.run_scenario(phase1())
    dep.crash(group.primary)                  # ack'd; then primary dies

    async def phase2():
        retried = await dep.call(kv.client_pid, "shard-0", "put",
                                 {"key": "k", "value": "v1"},
                                 retry_of=first["result"].id)
        assert retried.ok
        assert retried.args == first["result"].args

    dep.run_scenario(phase2())
    assert dep.metrics.value(
        "service.shard-0.reply_cache.hits") == 1
    # The new primary never executed the retried write a second time.
    puts = [e for e in svc.app(group.primary).apply_log
            if e[0] == "put"]
    assert puts == []                         # backup only ever ingested


# ---------------------------------------------------------------------------
# Recovery: resync, parked writes, demotion on rejoin
# ---------------------------------------------------------------------------


def test_recovered_replica_resyncs_before_serving():
    dep = Deployment(seed=50, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3),
                          app_factory=StableKVStore)
    group = dep.replication.group("shard-0")
    old_primary = group.primary
    svc = dep.services["shard-0"]

    async def phase1():
        assert (await kv.put("keep", 1)).ok
        assert (await kv.put("stale", 1)).ok

    dep.run_scenario(phase1())
    dep.crash(old_primary)

    async def phase2():
        assert (await kv.delete("stale")).ok   # old primary missed this
        assert (await kv.put("fresh", 2)).ok

    dep.run_scenario(phase2())
    dep.recover(old_primary)                   # reloads pre-crash state
    assert old_primary not in group.synced     # not electable yet
    dep.settle(2.0)                            # resync runs
    assert old_primary in group.synced
    assert group.primary == old_primary        # largest pid takes back
    assert dep.metrics.value("repl.resyncs") == 1
    assert dep.metrics.value("repl.demotions") == 1
    # Stale state was dropped, missed writes transferred.
    assert svc.app(old_primary).data == {"keep": 1, "fresh": 2}

    async def phase3():
        assert (await kv.get("fresh")).args == 2

    dep.run_scenario(phase3())


def test_writes_park_during_resync_and_drain():
    dep = Deployment(seed=51, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=primary_backup(3))
    group = dep.replication.group("shard-0")
    backup = min(group.members)

    async def phase1():
        assert (await kv.put("a", 1)).ok

    dep.run_scenario(phase1())
    dep.crash(backup)
    dep.recover(backup)        # queues the resync daemon

    async def racing_write():
        # The resync task was queued first, so it blocks writes before
        # this runs; the write parks and drains after the transfer.
        result = await kv.put("b", 2)
        assert result.ok

    dep.run_scenario(racing_write())
    assert dep.metrics.value("repl.parked_writes") >= 1
    assert dep.metrics.value("repl.resyncs") == 1

    async def verify():
        assert (await kv.get("b")).args == 2

    dep.run_scenario(verify())


# ---------------------------------------------------------------------------
# Placement integration: revive instead of drain, elastic replica groups
# ---------------------------------------------------------------------------


def test_driver_revives_binding_from_unbound_live_replica():
    dep = Deployment(seed=52, membership="oracle")
    kv = build_sharded_kv(dep, 1, replication=active_replicas(3))
    dep.auto_rebind(regrow=False)
    group = dep.replication.group("shard-0")
    p1, p2, p3 = sorted(group.members)

    async def seed_data():
        assert (await kv.put("a", 1)).ok

    dep.run_scenario(seed_data())
    dep.crash(p1)
    dep.recover(p1)
    dep.settle(2.0)            # p1 resyncs but stays out of the binding
    assert dep.registry.lookup("shard-0").members == (p2, p3)
    dep.crash(p2)
    assert dep.registry.lookup("shard-0").members == (p3,)
    # Last bound server dies; p1 is alive outside the binding, so the
    # driver re-points the binding instead of declaring the shard dead.
    dep.crash(p3)
    assert dep.registry.lookup("shard-0").members == (p1,)
    assert dep.metrics.value("placement.rebind.revive") == 1

    async def still_serving():
        assert (await kv.get("a")).args == 1
        assert (await kv.put("b", 2)).ok

    dep.run_scenario(still_serving())


def test_elastic_plane_hosts_replica_groups():
    dep = Deployment(seed=53)
    plane, kv = build_elastic_kv(dep, 2, replication=primary_backup(2))
    assert set(dep.replication.groups) == {"shard-0", "shard-1"}
    writes = {f"key-{i}": i for i in range(24)}

    async def load():
        for key, value in writes.items():
            assert (await kv.put(key, value)).ok

    dep.run_scenario(load())

    # Growing the ring deploys a whole new replica group and migrates
    # ranges into it.
    dep.run_scenario(plane.add_shard("shard-2"))
    assert "shard-2" in dep.replication.groups
    new = dep.services["shard-2"]
    assert len(new.server_pids) == 2

    async def read_all():
        for key, value in writes.items():
            result = await kv.get(key)
            assert result.ok and result.args == value, key

    dep.run_scenario(read_all())
    # The migrated shard's backup holds the moved keys too (the ingest
    # was a replicated write through the group's primary).
    moved = {k for k in writes if plane.ring.route(k) == "shard-2"}
    if moved:
        group = dep.replication.group("shard-2")
        backup = next(p for p in group.members if p != group.primary)
        assert moved <= set(new.app(backup).data)
