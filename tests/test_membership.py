"""Membership semantics: oracle and heartbeat detectors feeding gRPC."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import KVStore
from repro.core.messages import MemChange
from repro.core.microprotocols import ALL
from repro.membership import HeartbeatDetector
from repro.net import NetworkFabric, Node, UnreliableTransport
from repro.runtime import SimRuntime
from repro.xkernel import TypeDemux, compose_stack

FAST = LinkSpec(delay=0.005, jitter=0.0)


# ----------------------------------------------------------------------
# Acceptance x membership (the paper's membership semantics)
# ----------------------------------------------------------------------

def test_acceptance_all_completes_when_failed_member_detected():
    spec = ServiceSpec(acceptance=ALL, bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST, membership="oracle")
    cluster.crash(3)
    result = cluster.call_and_run("put", {"key": "k", "value": 1})
    assert result.ok
    # Completed with the two functioning servers' replies.
    assert cluster.runtime.now() < 1.0


def test_acceptance_all_without_membership_waits_forever():
    spec = ServiceSpec(acceptance=ALL, bounded=2.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)  # no membership service
    cluster.crash(3)
    result = cluster.call_and_run("put", {"key": "k", "value": 1})
    # "a call will only terminate ... when the time limit expires"
    assert result.status is Status.TIMEOUT
    assert cluster.runtime.now() == pytest.approx(2.0, abs=0.05)


def test_failure_during_pending_call_completes_it():
    spec = ServiceSpec(acceptance=ALL, bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST, membership="oracle")
    cluster.make_slow(3, 5.0)   # server 3 will be the holdout

    async def scenario():
        res = await cluster.call(cluster.client, "put",
                                 {"key": "k", "value": 1})
        assert res.ok

    task = cluster.spawn_client(cluster.client, scenario())
    # Crash the holdout while the call waits on it.
    cluster.runtime.call_later(0.5, lambda: cluster.crash(3))

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.5)
    assert cluster.runtime.now() < 2.0   # did not wait the 5s link


def test_recovered_member_counts_again_for_new_calls():
    spec = ServiceSpec(acceptance=ALL, bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST, membership="oracle")
    cluster.crash(2)
    assert cluster.call_and_run("put", {"key": "a", "value": 1}).ok
    cluster.recover(2)
    cluster.settle(0.1)
    result = cluster.call_and_run("put", {"key": "b", "value": 2},
                                  extra_time=0.5)
    assert result.ok
    # Server 2 (fresh volatile state) saw only the second put.
    assert cluster.app(2).data == {"b": 2}


# ----------------------------------------------------------------------
# Heartbeat detector (unit-ish)
# ----------------------------------------------------------------------

def build_detector_pair(rt, interval=0.05, suspect_after=3):
    fabric = NetworkFabric(rt, default_link=FAST)
    detectors = {}
    for pid in (1, 2):
        node = Node(pid, rt, fabric)
        demux = TypeDemux(f"demux@{pid}")
        transport = UnreliableTransport(node)
        compose_stack(demux, transport)
        detector = HeartbeatDetector(node, [1, 2], interval=interval,
                                     suspect_after=suspect_after)
        from repro.membership.detector import Heartbeat
        demux.attach(Heartbeat, detector)
        node.start()
        detector.start()
        detectors[pid] = detector
    return fabric, detectors


def test_heartbeat_no_false_suspicions_on_healthy_network():
    rt = SimRuntime()
    fabric, detectors = build_detector_pair(rt)
    rt.kernel.run_until(5.0)
    assert detectors[1].alive() == {1, 2}
    assert detectors[2].alive() == {1, 2}


def test_heartbeat_detects_crash_and_recovery():
    rt = SimRuntime()
    fabric, detectors = build_detector_pair(rt)
    changes = []
    detectors[1].listeners.append(lambda pid, ch: changes.append((pid, ch)))
    rt.kernel.run_until(1.0)
    fabric.node(2).crash()
    rt.kernel.run_until(2.0)
    assert detectors[1].is_suspected(2)
    fabric.node(2).recover()
    rt.kernel.run_until(3.0)
    assert not detectors[1].is_suspected(2)
    assert changes == [(2, MemChange.FAILURE), (2, MemChange.RECOVERY)]


def test_heartbeat_detection_latency_scales_with_parameters():
    rt = SimRuntime()
    fabric, detectors = build_detector_pair(rt, interval=0.1,
                                            suspect_after=5)
    detected_at = []
    detectors[1].listeners.append(
        lambda pid, ch: detected_at.append(rt.now()))
    rt.kernel.run_until(1.0)
    fabric.node(2).crash()
    rt.kernel.run_until(5.0)
    assert len(detected_at) == 1
    latency = detected_at[0] - 1.0
    assert 0.4 < latency < 1.0   # ~interval * suspect_after


def test_heartbeat_false_suspicion_under_partition_then_heal():
    rt = SimRuntime()
    fabric, detectors = build_detector_pair(rt)
    rt.kernel.run_until(1.0)
    fabric.partition([1], [2])
    rt.kernel.run_until(2.0)
    # Both sides suspect each other although neither crashed.
    assert detectors[1].is_suspected(2)
    assert detectors[2].is_suspected(1)
    fabric.heal()
    rt.kernel.run_until(3.0)
    assert not detectors[1].is_suspected(2)
    assert not detectors[2].is_suspected(1)


def test_heartbeat_membership_end_to_end():
    spec = ServiceSpec(acceptance=ALL, bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST,
                             membership="heartbeat",
                             heartbeat_interval=0.05)
    cluster.settle(0.5)   # let heartbeats establish
    cluster.crash(3)
    cluster.settle(0.5)   # detection takes ~3 intervals
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=0.5)
    assert result.ok
    assert cluster.app(1).data == {"k": 1}
    assert cluster.app(2).data == {"k": 1}
