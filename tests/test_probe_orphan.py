"""Probe-based orphan detection (extension micro-protocol)."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore

FAST = LinkSpec(delay=0.005, jitter=0.0)


def probe_spec(**overrides):
    spec = ServiceSpec(orphans="probe", unique=True, bounded=10.0,
                       probe_interval=0.1, probe_missed_limit=3)
    return spec.with_(**overrides)


def make_cluster(spec=None, op_delay=2.0):
    return ServiceCluster(spec or probe_spec(),
                          lambda pid: KVStore(op_delay=op_delay),
                          n_servers=1, default_link=FAST)


def micro(cluster):
    return cluster.grpc(1).micro("Probe_Orphan_Termination")


def test_probe_kills_orphans_of_silently_dead_client():
    # The client crashes mid-call and NEVER recovers: incarnation-based
    # detection would wait forever, probing kills within
    # ~interval * missed_limit.
    cluster = make_cluster()
    client = cluster.client

    async def doomed():
        await cluster.call(client, "put", {"key": "orphan", "value": 1})

    async def scenario():
        cluster.spawn_client(client, doomed())
        await cluster.runtime.sleep(0.1)   # execution in progress
        cluster.crash(client)
        await cluster.runtime.sleep(1.0)   # let probing detect

    cluster.run_scenario(scenario())
    probe = micro(cluster)
    assert probe.probe_kills == 1
    assert "orphan" not in cluster.app(1).data      # execution killed
    assert len(cluster.grpc(1).sRPC) == 0
    # Detection time: the kill happened within ~interval * (limit + 1).
    assert cluster.runtime.now() <= 1.2


def test_pongs_keep_live_clients_work_alive():
    cluster = make_cluster(op_delay=0.8)
    client = cluster.client
    results = []

    async def slow_call():
        results.append(await cluster.call(client, "put",
                                          {"key": "slow", "value": 1}))

    async def scenario():
        task = cluster.spawn_client(client, slow_call())
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=0.5)
    # The call outlived several probe intervals, yet was never killed.
    assert results and results[0].ok
    assert micro(cluster).kills == 0
    assert cluster.app(1).data == {"slow": 1}


def test_pong_from_new_incarnation_exposes_orphans():
    # The client reboots but issues no new CALL; its PONG (answering a
    # routine probe) already carries the new incarnation and triggers
    # the orphan kill.
    cluster = make_cluster()
    client = cluster.client

    async def doomed():
        await cluster.call(client, "put", {"key": "orphan", "value": 1})

    async def scenario():
        cluster.spawn_client(client, doomed())
        await cluster.runtime.sleep(0.12)
        cluster.crash(client)
        cluster.recover(client)            # reboots silently
        await cluster.runtime.sleep(0.5)   # probe + pong round trips

    cluster.run_scenario(scenario())
    probe = micro(cluster)
    assert probe.kills >= 1
    assert "orphan" not in cluster.app(1).data


def test_retransmitting_client_reexecutes_after_false_kill():
    # A probe false-positive (client partitioned, not dead) kills the
    # execution; when the partition heals, the client's retransmission
    # runs the call again — at-least-once holds end to end.
    cluster = make_cluster(op_delay=1.5)
    client = cluster.client
    results = []

    async def call():
        results.append(await cluster.call(client, "put",
                                          {"key": "k", "value": 9}))

    async def scenario():
        task = cluster.spawn_client(client, call())
        await cluster.runtime.sleep(0.1)
        cluster.partition([client], [1])   # probes now unanswered
        await cluster.runtime.sleep(1.0)   # kill happens
        assert micro(cluster).probe_kills == 1
        cluster.heal()
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=1.0)
    assert results and results[0].ok
    assert cluster.app(1).data == {"k": 9}


def test_probe_parameters_validated():
    with pytest.raises(ValueError):
        probe_spec(probe_interval=0.0).build()
    with pytest.raises(ValueError):
        probe_spec(probe_missed_limit=0).build()


def test_probe_state_cleared_when_no_pending_work():
    cluster = make_cluster(op_delay=0.0)
    cluster.call_and_run("put", {"key": "a", "value": 1}, extra_time=0.5)
    probe = micro(cluster)
    assert probe._probes == {}   # nothing pending, nothing probed
