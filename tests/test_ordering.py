"""Ordering semantics: FIFO and Total Order invariants under jitter.

The probes use the KV store's ``apply_log``.  High network jitter plus
pipelined (asynchronous) calls make arrival order differ from issue
order, so an ordering guarantee has to be earned by the micro-protocols,
not by accident of the schedule.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore

JITTERY = LinkSpec(delay=0.01, jitter=0.08)


def kv_cluster(spec, n_servers=3, n_clients=1, seed=0):
    return ServiceCluster(spec, KVStore, n_servers=n_servers,
                          n_clients=n_clients, seed=seed,
                          default_link=JITTERY)


def pipelined_puts(cluster, client_pid, keys):
    """Issue one call per key concurrently from ``client_pid``."""
    async def one(key, i):
        await cluster.call(client_pid, "put", {"key": key, "value": i})

    async def scenario():
        tasks = [cluster.spawn_client(client_pid, one(k, i))
                 for i, k in enumerate(keys)]
        for t in tasks:
            await cluster.runtime.join(t)

    return scenario()


def put_keys(app):
    return [key for kind, key, _ in app.apply_log if kind == "put"]


def test_without_ordering_servers_can_disagree():
    # Sanity check that the fault model really scrambles order: across a
    # few seeds, at least one run must show disagreement when no ordering
    # micro-protocol is configured.
    disagreements = 0
    for seed in range(5):
        spec = ServiceSpec(acceptance=3, bounded=60.0, unique=True,
                           ordering="none")
        cluster = kv_cluster(spec, seed=seed)
        cluster.run_scenario(pipelined_puts(
            cluster, cluster.client, [f"k{i}" for i in range(8)]),
            extra_time=2.0)
        logs = {pid: put_keys(cluster.app(pid))
                for pid in cluster.server_pids}
        if len({tuple(log) for log in logs.values()}) > 1:
            disagreements += 1
    assert disagreements > 0


def test_fifo_order_applies_client_calls_in_issue_order():
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="fifo")
    for seed in range(3):
        cluster = kv_cluster(spec, seed=seed)
        keys = [f"k{i}" for i in range(10)]
        cluster.run_scenario(
            pipelined_puts(cluster, cluster.client, keys), extra_time=2.0)
        for pid in cluster.server_pids:
            log = put_keys(cluster.app(pid))
            assert log == keys, f"seed={seed} server={pid}"


def test_fifo_order_is_per_client_only():
    # Two clients interleave arbitrarily, but each client's own sequence
    # must appear in order at every server.
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="fifo")
    cluster = kv_cluster(spec, n_clients=2, seed=1)
    c1, c2 = cluster.client_pids
    keys1 = [f"a{i}" for i in range(6)]
    keys2 = [f"b{i}" for i in range(6)]

    async def scenario():
        tasks = []
        for pid, keys in ((c1, keys1), (c2, keys2)):
            for i, key in enumerate(keys):
                async def one(p=pid, k=key, v=i):
                    await cluster.call(p, "put", {"key": k, "value": v})
                tasks.append(cluster.spawn_client(pid, one()))
        for t in tasks:
            await cluster.runtime.join(t)

    cluster.run_scenario(scenario(), extra_time=2.0)
    for pid in cluster.server_pids:
        log = put_keys(cluster.app(pid))
        assert [k for k in log if k.startswith("a")] == keys1
        assert [k for k in log if k.startswith("b")] == keys2


def test_total_order_all_servers_apply_same_sequence():
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="total")
    for seed in range(3):
        cluster = kv_cluster(spec, n_clients=3, seed=seed)
        async def scenario():
            tasks = []
            for ci, pid in enumerate(cluster.client_pids):
                for i in range(5):
                    async def one(p=pid, k=f"c{ci}-{i}", v=i):
                        await cluster.call(p, "put",
                                           {"key": k, "value": v})
                    tasks.append(cluster.spawn_client(pid, one()))
            for t in tasks:
                await cluster.runtime.join(t)

        cluster.run_scenario(scenario(), extra_time=3.0)
        logs = [tuple(put_keys(cluster.app(pid)))
                for pid in cluster.server_pids]
        assert len(logs[0]) == 15
        assert logs.count(logs[0]) == len(logs), f"seed={seed}: {logs}"


def test_total_order_under_message_loss():
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="total", retrans_timeout=0.05)
    link = LinkSpec(delay=0.01, jitter=0.03, loss=0.1)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, n_clients=2,
                             seed=11, default_link=link)

    async def scenario():
        tasks = []
        for ci, pid in enumerate(cluster.client_pids):
            for i in range(4):
                async def one(p=pid, k=f"c{ci}-{i}", v=i):
                    await cluster.call(p, "put", {"key": k, "value": v})
                tasks.append(cluster.spawn_client(pid, one()))
        for t in tasks:
            await cluster.runtime.join(t)

    cluster.run_scenario(scenario(), extra_time=5.0)
    logs = [tuple(put_keys(cluster.app(pid)))
            for pid in cluster.server_pids]
    assert len(logs[0]) == 8
    assert logs.count(logs[0]) == len(logs)


def test_total_order_replicas_converge_to_identical_state():
    spec = ServiceSpec(acceptance=3, bounded=0.0, unique=True,
                       ordering="total")
    cluster = kv_cluster(spec, n_clients=2, seed=5)

    async def scenario():
        tasks = []
        for pid in cluster.client_pids:
            for i in range(5):
                # Both clients fight over the same keys; convergence then
                # genuinely needs total order.
                async def one(p=pid, i=i):
                    await cluster.call(p, "put",
                                       {"key": f"k{i % 3}", "value": p})
                tasks.append(cluster.spawn_client(pid, one()))
        for t in tasks:
            await cluster.runtime.join(t)

    cluster.run_scenario(scenario(), extra_time=3.0)
    states = [cluster.app(pid).data for pid in cluster.server_pids]
    assert states[0] == states[1] == states[2]


def test_total_order_leader_failover_with_membership():
    spec = ServiceSpec(acceptance=2, bounded=0.0, unique=True,
                       ordering="total")
    cluster = ServiceCluster(
        spec, KVStore, n_servers=3, seed=3,
        default_link=LinkSpec(delay=0.01, jitter=0.0),
        membership="oracle")

    async def scenario():
        # A first call through the original leader (pid 3).
        res = await cluster.call(cluster.client, "put",
                                 {"key": "before", "value": 1})
        assert res.ok
        cluster.crash(3)
        # New leader is pid 2; calls must keep completing.
        res = await cluster.call(cluster.client, "put",
                                 {"key": "after", "value": 2})
        assert res.ok

    task = cluster.spawn_client(cluster.client, scenario())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=2.0)
    for pid in (1, 2):
        assert put_keys(cluster.app(pid)) == ["before", "after"]
