"""Property-based tests (hypothesis) on adaptation-plan legality.

The enumeration module (:func:`repro.core.enumerate.enumerate_services`)
lists every composition the strict Figure-4 graph accepts.  Plan
validation must agree with it exactly:

* a plan between *any* two enumerated legal compositions validates —
  live adaptation can reach every buildable service from every other;
* a plan whose target breaks a Figure-4 edge is rejected with a
  :class:`~repro.errors.DependencyError` whose message cites the
  violated edge's prerequisite protocol, whatever composition it was
  drawn against.

Pure-data properties: no simulation, full hypothesis strength.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adapt import AdaptationPlan, validate_plan
from repro.core.config import validate
from repro.core.enumerate import enumerate_services
from repro.errors import ConfigurationError, DependencyError, ReproError

RESULT = enumerate_services()
LEGAL = RESULT.strict_specs

#: Figure-4-breaking mutations: (changes, prerequisite the error must
#: cite).  Each produces a spec the strict graph rejects, whatever the
#: starting point.
ILLEGAL_MUTATIONS = [
    ({"unique": True, "reliable": False, "ordering": "none"},
     "Reliable_Communication"),
    ({"ordering": "fifo", "reliable": False, "unique": False},
     "Reliable_Communication"),
    ({"ordering": "total", "unique": False},
     "Unique_Execution"),
    ({"ordering": "total", "unique": True, "reliable": True,
      "bounded": 1.0},
     "Bounded_Termination"),
    ({"orphans": "avoid", "reliable": False, "unique": False,
      "ordering": "none"},
     "Reliable_Communication"),
]

specs = st.sampled_from(LEGAL)


def test_enumeration_matches_the_paper():
    assert RESULT.cluster_choices == 11
    assert RESULT.paper_count == 198
    assert RESULT.strict_count == len(LEGAL) == 186


@settings(max_examples=200, deadline=None)
@given(current=specs, target=specs)
def test_any_legal_composition_reaches_any_other(current, target):
    """validate_plan accepts every pair drawn from the enumerated legal
    space — in both roles, with an accurate from_spec pin."""
    validate_plan(AdaptationPlan(service="s", to_spec=target),
                  current=current)
    validate_plan(AdaptationPlan(service="s", to_spec=target,
                                 from_spec=current),
                  current=current)


@settings(max_examples=200, deadline=None)
@given(current=specs, mutation=st.sampled_from(ILLEGAL_MUTATIONS))
def test_illegal_targets_rejected_citing_the_edge(current, mutation):
    """A target outside the strict space is rejected with the violated
    Figure-4 edge's prerequisite named in the error."""
    changes, prerequisite = mutation
    target = current.with_(**changes)
    # The mutation really is outside the enumerated space.
    with pytest.raises(ConfigurationError):
        validate(target)
    assert target not in LEGAL
    with pytest.raises(DependencyError) as err:
        validate_plan(AdaptationPlan(service="s", to_spec=target),
                      current=current)
    assert prerequisite in str(err.value)


@settings(max_examples=100, deadline=None)
@given(current=specs, drawn_against=specs)
def test_stale_pins_always_rejected(current, drawn_against):
    """A plan pinned to any composition other than the running one is
    stale, whatever the (legal) target."""
    plan = AdaptationPlan(service="s", to_spec=current,
                          from_spec=drawn_against)
    if drawn_against == current:
        validate_plan(plan, current=current)
    else:
        with pytest.raises(ConfigurationError, match="stale"):
            validate_plan(plan, current=current)


@settings(max_examples=100, deadline=None)
@given(target=specs,
       timeout=st.floats(min_value=-10.0, max_value=10.0))
def test_nonpositive_drain_budgets_rejected(target, timeout):
    plan = AdaptationPlan(service="s", to_spec=target,
                          drain_timeout=timeout)
    if timeout > 0:
        validate_plan(plan, current=target)
    else:
        with pytest.raises(ReproError, match="drain_timeout"):
            validate_plan(plan, current=target)
