"""Long mixed-fault scenarios: the semantics must hold under chaos.

Each scenario combines several fault types (loss, duplication, delay
spikes, partitions, crashes) over tens of simulated seconds and then
checks the configured guarantees — the kind of soak test a downstream
user would run before trusting the library.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import BankApp, CounterApp, KVStore

CHAOS_LINK = LinkSpec(delay=0.01, jitter=0.01, loss=0.1, duplicate=0.05,
                      spike_prob=0.02, spike_delay=0.2)


def test_exactly_once_counter_through_partition_and_crash():
    spec = ServiceSpec(unique=True, acceptance=2, bounded=0.0,
                       retrans_timeout=0.05)
    cluster = ServiceCluster(spec, CounterApp, n_servers=2, seed=21,
                             default_link=CHAOS_LINK)
    client = cluster.client
    results = []

    async def load():
        for i in range(15):
            results.append(await cluster.call(
                client, "inc", {"amount": 1, "tag": i}))

    async def scenario():
        task = cluster.spawn_client(client, load())
        # A rolling partition and a server bounce while the load runs.
        await cluster.runtime.sleep(0.3)
        cluster.partition([client], [1])
        await cluster.runtime.sleep(0.5)
        cluster.heal()
        await cluster.runtime.sleep(0.3)
        cluster.crash(2)
        await cluster.runtime.sleep(0.5)
        cluster.recover(2)
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)
    assert all(r.status is Status.OK for r in results)
    # Server 1 never crashed: every increment executed exactly once.
    for tag in range(15):
        assert cluster.dispatcher(1).executions(tag) == 1
    assert cluster.app(1).value == 15


def test_total_order_rsm_under_chaos_links():
    spec = ServiceSpec(unique=True, ordering="total", acceptance=3,
                       bounded=0.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, n_clients=3,
                             seed=22, default_link=CHAOS_LINK)

    async def client_loop(ci, pid):
        for i in range(5):
            result = await cluster.call(
                pid, "put", {"key": f"k{(ci + i) % 4}",
                             "value": f"{ci}-{i}"})
            assert result.ok

    async def scenario():
        tasks = [cluster.spawn_client(pid, client_loop(ci, pid))
                 for ci, pid in enumerate(cluster.client_pids)]
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=5.0)
    logs = [tuple(k for _, k, _ in cluster.app(pid).apply_log)
            for pid in cluster.server_pids]
    assert len(logs[0]) == 15
    assert logs.count(logs[0]) == 3
    states = [cluster.app(pid).data for pid in cluster.server_pids]
    assert states[0] == states[1] == states[2]


def test_money_conserved_through_crash_storm_with_lossy_links():
    spec = ServiceSpec(unique=True, execution="atomic", acceptance=1,
                       bounded=0.5, retrans_timeout=0.05)
    link = LinkSpec(delay=0.005, jitter=0.002, loss=0.05)
    cluster = ServiceCluster(
        spec, lambda pid: BankApp({"a": 500, "b": 500},
                                  transfer_delay=0.03),
        n_servers=1, seed=23, default_link=link)
    client = cluster.client

    async def scenario():
        for round_no in range(8):
            async def xfer():
                await cluster.call(client, "transfer",
                                   {"src": "a", "dst": "b",
                                    "amount": 10})
            task = cluster.spawn_client(client, xfer())
            # Crash the server mid-round on even rounds.
            if round_no % 2 == 0:
                await cluster.runtime.sleep(0.02)
                cluster.crash(1)
                await cluster.runtime.sleep(0.1)
                cluster.recover(1)
            try:
                await cluster.runtime.join(task)
            except BaseException:
                pass
            await cluster.runtime.sleep(0.3)

    cluster.run_scenario(scenario(), extra_time=2.0)
    stable = cluster.node(1).stable
    assert stable.get("acct:a") + stable.get("acct:b") == 1000


def test_fifo_per_client_order_with_client_bounce():
    spec = ServiceSpec(unique=True, ordering="fifo", acceptance=2,
                       bounded=0.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=2, seed=24,
                             default_link=CHAOS_LINK)
    client = cluster.client

    async def burst(prefix, n):
        tasks = []
        for i in range(n):
            async def one(k=f"{prefix}{i}"):
                await cluster.call(client, "put", {"key": k, "value": 1})
            tasks.append(cluster.spawn_client(client, one()))
        for task in tasks:
            await cluster.runtime.join(task)

    async def scenario():
        await burst("pre", 5)
        cluster.crash(client)
        await cluster.runtime.sleep(0.2)
        cluster.recover(client)
        await burst("post", 5)

    cluster.run_scenario(scenario(), extra_time=3.0)
    for pid in cluster.server_pids:
        keys = [k for _, k, _ in cluster.app(pid).apply_log]
        pre = [k for k in keys if k.startswith("pre")]
        post = [k for k in keys if k.startswith("post")]
        # Each incarnation's burst in issue order, on every server.
        assert pre == [f"pre{i}" for i in range(5)]
        assert post == [f"post{i}" for i in range(5)]


def test_heartbeat_membership_survives_chaos():
    from repro.core.microprotocols import ALL

    spec = ServiceSpec(unique=True, acceptance=ALL, bounded=0.0,
                       retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, seed=25,
                             default_link=LinkSpec(delay=0.005,
                                                   jitter=0.003,
                                                   loss=0.05),
                             membership="heartbeat",
                             heartbeat_interval=0.05)
    cluster.settle(0.5)
    cluster.crash(2)
    cluster.settle(1.0)   # detect
    result = cluster.call_and_run("put", {"key": "k", "value": 1},
                                  extra_time=1.0)
    assert result.ok
    cluster.recover(2)
    cluster.settle(1.0)   # recovery detected
    result = cluster.call_and_run("put", {"key": "k2", "value": 2},
                                  extra_time=1.0)
    assert result.ok
    assert cluster.app(2).data.get("k2") == 2   # back in rotation


def test_determinism_of_an_entire_chaos_scenario():
    def run():
        spec = ServiceSpec(unique=True, acceptance=2, bounded=1.0)
        cluster = ServiceCluster(spec, CounterApp, n_servers=2, seed=99,
                                 default_link=CHAOS_LINK)
        statuses = []
        for i in range(8):
            statuses.append(cluster.call_and_run(
                "inc", {"amount": 1, "tag": i}, extra_time=0.2).status)
        return statuses, dict(cluster.trace.counts), \
            cluster.app(1).value

    assert run() == run()
