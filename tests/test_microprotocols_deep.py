"""Deep behavioral tests of individual micro-protocols on the wire.

These go below the black-box integration tests: they count actual
messages on the fabric, inspect the micro-protocols' tables mid-run, and
pin down the exact retransmission / acknowledgment / replay behavior of
each module.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import CounterApp, KVStore
from repro.core.messages import NetOp
from repro.faults import all_acks, calls_to, drop_matching, net_msg

FAST = LinkSpec(delay=0.005, jitter=0.0)


def count_wire(cluster, kind: NetOp, src=None, dst=None) -> int:
    total = 0
    for event in cluster.trace.events:
        if event.kind != "send":
            continue
        msg = event.detail
        if getattr(msg, "type", None) is not kind:
            continue
        if src is not None and event.src != src:
            continue
        if dst is not None and event.dst != dst:
            continue
        total += 1
    return total


# ----------------------------------------------------------------------
# Reliable Communication
# ----------------------------------------------------------------------

def test_no_retransmission_on_clean_fast_path():
    spec = ServiceSpec(unique=True, bounded=5.0, retrans_timeout=0.1)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST)
    cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    # One CALL per server, no more: the reply landed before the timer.
    assert count_wire(cluster, NetOp.CALL, dst=1) == 1
    assert count_wire(cluster, NetOp.CALL, dst=2) == 1


def test_retransmissions_target_only_unacked_servers():
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=2,
                       retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST)
    # Server 2 is unreachable for 0.3s: roughly 6 retransmissions to it,
    # but server 1 (which replied immediately) gets exactly one CALL.
    cluster.partition([cluster.client], [2])
    cluster.runtime.call_later(0.3, cluster.heal)
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    assert result.ok
    assert count_wire(cluster, NetOp.CALL, dst=1) == 1
    assert count_wire(cluster, NetOp.CALL, dst=2) >= 4


def test_retransmission_stops_after_completion():
    spec = ServiceSpec(unique=True, bounded=5.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=1,
                             default_link=FAST)
    cluster.call_and_run("get", {"key": "k"})
    before = count_wire(cluster, NetOp.CALL)
    cluster.settle(1.0)   # many timer periods later
    assert count_wire(cluster, NetOp.CALL) == before


def test_ack_suppresses_reply_replay_retransmissions():
    # Drop all ACKs: the server keeps its reply cached, and every
    # retransmitted CALL gets a replayed REPLY rather than re-execution.
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=1,
                       retrans_timeout=0.05)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=FAST)
    fault = drop_matching(cluster.fabric, all_acks())
    result = cluster.call_and_run("inc", {"amount": 1, "tag": "t"},
                                  extra_time=0.3)
    assert result.ok
    assert fault.dropped >= 1
    unique = cluster.grpc(1).micro("Unique_Execution")
    # Reply cache still holds the result: the ACK never arrived.
    assert len(unique.old_results) == 1
    assert cluster.dispatcher(1).executions("t") == 1


# ----------------------------------------------------------------------
# Unique Execution
# ----------------------------------------------------------------------

def test_duplicate_calls_generate_replayed_replies_not_executions():
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=2,
                       retrans_timeout=0.04)
    cluster = ServiceCluster(spec, CounterApp, n_servers=2,
                             default_link=FAST)
    # Server 1's replies all vanish: the client retransmits, server 1
    # replays from the cache every time, and executes exactly once.
    fault = drop_matching(
        cluster.fabric,
        lambda env: env.src == 1
        and getattr(net_msg(env), "type", None) is NetOp.REPLY)
    cluster.runtime.call_later(0.5, fault.remove)
    result = cluster.call_and_run("inc", {"amount": 1, "tag": "t"},
                                  extra_time=0.5)
    assert result.ok
    assert cluster.dispatcher(1).executions("t") == 1
    replies_from_1 = count_wire(cluster, NetOp.REPLY, src=1)
    assert replies_from_1 >= 5   # original + replays


def test_client_acks_every_counted_reply():
    spec = ServiceSpec(unique=True, bounded=5.0, acceptance=3)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)
    cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    assert count_wire(cluster, NetOp.ACK, src=cluster.client) == 3
    for pid in cluster.server_pids:
        unique = cluster.grpc(pid).micro("Unique_Execution")
        assert unique.old_results == {}   # all retired


def test_old_calls_grow_one_entry_per_distinct_call():
    spec = ServiceSpec(unique=True, bounded=5.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1,
                             default_link=FAST)
    for i in range(4):
        cluster.call_and_run("get", {"key": f"k{i}"}, extra_time=0.2)
    unique = cluster.grpc(1).micro("Unique_Execution")
    assert len(unique.old_calls) == 4


# ----------------------------------------------------------------------
# Bounded Termination
# ----------------------------------------------------------------------

def test_each_call_gets_its_own_deadline():
    spec = ServiceSpec(bounded=1.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=1,
                             default_link=FAST)
    cluster.partition([cluster.client], [1])
    t0 = cluster.runtime.now()
    first = cluster.call_and_run("get", {"key": "a"})
    first_elapsed = cluster.runtime.now() - t0
    t1 = cluster.runtime.now()
    second = cluster.call_and_run("get", {"key": "b"})
    second_elapsed = cluster.runtime.now() - t1
    assert first.status is second.status is Status.TIMEOUT
    assert first_elapsed == pytest.approx(1.0, abs=0.02)
    assert second_elapsed == pytest.approx(1.0, abs=0.02)


def test_timeout_result_carries_no_partial_args():
    spec = ServiceSpec(bounded=0.5)
    cluster = ServiceCluster(spec, KVStore, n_servers=1,
                             default_link=FAST)
    cluster.crash(1)
    result = cluster.call_and_run("get", {"key": "k"})
    assert result.status is Status.TIMEOUT
    assert result.args is None   # the collation seed, untouched


# ----------------------------------------------------------------------
# Acceptance
# ----------------------------------------------------------------------

def test_nres_counts_distinct_servers_not_messages():
    spec = ServiceSpec(bounded=5.0, acceptance=2, reliable=True,
                       retrans_timeout=0.03, unique=False)
    # Duplicated links: the same server's reply can arrive twice, but
    # two copies of one reply must not satisfy acceptance=2.
    link = LinkSpec(delay=0.005, jitter=0.0, duplicate=1.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2, seed=3,
                             default_link=link)
    cluster.make_slow(2, 0.3)   # server 2's reply is late
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    assert result.ok
    # Completion required the slow server: strictly after its delay.
    assert cluster.runtime.now() >= 0.3


def test_acceptance_progress_is_observable_midflight():
    spec = ServiceSpec(bounded=5.0, acceptance=3)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)
    cluster.make_slow(3, 1.0)
    observed = {}

    async def scenario():
        task = cluster.spawn_client(
            cluster.client,
            _call(cluster, "get", {"key": "k"}))
        await cluster.runtime.sleep(0.1)
        record = cluster.grpc(cluster.client).pRPC.get(1)
        observed["nres_midflight"] = record.nres
        observed["done_flags"] = sorted(
            pid for pid, e in record.pending.items() if e.done)
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=1.5)
    assert observed["nres_midflight"] == 1      # two of three counted
    assert observed["done_flags"] == [1, 2]


def _call(cluster, op, args):
    async def inner():
        await cluster.call(cluster.client, op, args)
    return inner()
