"""The invariant checkers: unit behavior + cluster integration."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.analysis import (
    check_exactly_once_cluster,
    check_execution_counts,
    check_fifo_per_client,
    check_identical_sequences,
    check_prefix_consistency,
    check_subsequence,
    check_total_order_cluster,
)
from repro.apps import CounterApp, KVStore


def test_identical_sequences_passes_and_fails():
    ok = check_identical_sequences({1: ["a", "b"], 2: ["a", "b"]})
    assert ok and not ok.violations
    bad = check_identical_sequences({1: ["a", "b"], 2: ["b", "a"]})
    assert not bad
    assert "diverged" in bad.violations[0]
    with pytest.raises(AssertionError):
        bad.raise_if_failed()


def test_prefix_consistency():
    assert check_prefix_consistency({1: ["a", "b", "c"], 2: ["a", "b"]})
    assert check_prefix_consistency({1: [], 2: ["a"]})
    bad = check_prefix_consistency({1: ["a", "x"], 2: ["a", "y", "z"]})
    assert not bad


def test_subsequence_checker():
    assert check_subsequence(["a", "c"], ["a", "b", "c", "d"])
    assert check_subsequence([], ["a"])
    # Items absent from the observation are not violations (the replica
    # may simply not have received them yet)...
    assert check_subsequence(["a", "zz"], ["a"])
    # ...but present-and-misordered is.
    assert not check_subsequence(["c", "a"], ["a", "b", "c"])


def test_fifo_per_client_checker():
    clients = {"A": ["a1", "a2"], "B": ["b1", "b2"]}
    good_logs = {1: ["a1", "b1", "a2", "b2"],
                 2: ["b1", "b2", "a1", "a2"]}
    assert check_fifo_per_client(clients, good_logs)
    bad_logs = {1: ["a2", "a1", "b1", "b2"]}
    result = check_fifo_per_client(clients, bad_logs)
    assert not result
    assert "client A" in result.violations[0]


def test_execution_counts_checker():
    assert check_execution_counts({"t": 1}, at_least=1, at_most=1)
    low = check_execution_counts({"t": 0}, at_least=1)
    assert not low and "<" in low.violations[0]
    high = check_execution_counts({"t": 3}, at_most=1)
    assert not high and ">" in high.violations[0]


# ----------------------------------------------------------------------
# Cluster integration
# ----------------------------------------------------------------------

FAST = LinkSpec(delay=0.005, jitter=0.0)


def test_total_order_cluster_checker_green():
    spec = ServiceSpec(unique=True, ordering="total", acceptance=3,
                       bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             default_link=FAST)
    for i in range(4):
        cluster.call_and_run("put", {"key": f"k{i}", "value": i},
                             extra_time=0.2)
    check_total_order_cluster(cluster).raise_if_failed()


def test_total_order_cluster_checker_catches_divergence():
    spec = ServiceSpec(acceptance=3, bounded=5.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST)
    cluster.call_and_run("put", {"key": "k", "value": 1},
                         extra_time=0.2)
    # Manually corrupt one replica's log to prove detection works.
    cluster.app(2).apply_log.append(("put", "phantom", None))
    assert not check_total_order_cluster(cluster)


def test_exactly_once_cluster_checker():
    spec = ServiceSpec(unique=True, acceptance=2, bounded=5.0)
    cluster = ServiceCluster(spec, CounterApp, n_servers=2,
                             default_link=FAST)
    for i in range(3):
        cluster.call_and_run("inc", {"amount": 1, "tag": i},
                             extra_time=0.2)
    check_exactly_once_cluster(cluster, range(3)).raise_if_failed()
    # A never-issued tag fails the at_least side.
    assert not check_exactly_once_cluster(cluster, ["ghost"])
