"""Unit tests for simulated stable storage."""

import pytest

from repro.errors import StableStoreError
from repro.stablestore import StableStore


def test_checkpoint_roundtrip():
    store = StableStore()
    addr = store.write({"x": [1, 2, 3]})
    assert store.read(addr) == {"x": [1, 2, 3]}


def test_checkpoint_is_deep_copied_both_ways():
    store = StableStore()
    value = {"inner": [1]}
    addr = store.write(value)
    value["inner"].append(2)          # later volatile mutation
    loaded = store.read(addr)
    assert loaded == {"inner": [1]}   # not affected
    loaded["inner"].append(3)
    assert store.read(addr) == {"inner": [1]}  # nor by reader mutations


def test_read_unknown_address_raises():
    store = StableStore()
    with pytest.raises(StableStoreError):
        store.read(42)


def test_free_releases_checkpoint():
    store = StableStore()
    addr = store.write("snapshot")
    store.free(addr)
    assert not store.has_checkpoint(addr)
    with pytest.raises(StableStoreError):
        store.read(addr)
    store.free(addr)  # double-free is a no-op


def test_addresses_are_unique_and_monotonic():
    store = StableStore()
    addrs = [store.write(i) for i in range(5)]
    assert addrs == sorted(set(addrs))


def test_named_cells_roundtrip_and_delete():
    store = StableStore()
    store.put("balance", 100)
    assert store.get("balance") == 100
    assert "balance" in store
    store.delete("balance")
    assert store.get("balance") is None
    assert store.get("balance", default=-1) == -1


def test_named_cells_deep_copied():
    store = StableStore()
    value = [1, 2]
    store.put("cell", value)
    value.append(3)
    assert store.get("cell") == [1, 2]


def test_snapshot_and_restore_cells():
    store = StableStore()
    store.put("a", 1)
    store.put("b", 2)
    snapshot = store.snapshot_cells()
    store.put("a", 99)
    store.put("c", 3)
    store.restore_cells(snapshot)
    assert store.get("a") == 1
    assert store.get("b") == 2
    assert store.get("c") is None
    assert sorted(store.keys()) == ["a", "b"]


def test_write_counters():
    store = StableStore()
    store.write("x")
    store.put("k", 1)
    store.put("k", 2)
    assert store.checkpoint_writes == 1
    assert store.cell_writes == 2


def test_survives_node_crash():
    from repro import LinkSpec
    from repro.net import NetworkFabric, Node
    from repro.runtime import SimRuntime

    rt = SimRuntime()
    fabric = NetworkFabric(rt)
    node = Node(1, rt, fabric)
    node.start()
    node.stable.put("persisted", "yes")
    node.crash()
    node.recover()
    rt.kernel.run_until(0.01)  # let the respawned receive loop start
    assert node.stable.get("persisted") == "yes"
