"""Property-based tests for the analysis checkers and delta functions."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    check_identical_sequences,
    check_prefix_consistency,
    check_subsequence,
)
from repro.core.microprotocols.atomic_execution import (
    apply_delta,
    state_delta,
)

seq = st.lists(st.integers(0, 9), max_size=12)


@settings(max_examples=150, deadline=None)
@given(seq)
def test_identical_sequences_reflexive(s):
    assert check_identical_sequences({1: s, 2: list(s), 3: list(s)})


@settings(max_examples=150, deadline=None)
@given(seq, st.integers(0, 12))
def test_prefixes_are_always_prefix_consistent(s, cut):
    assert check_prefix_consistency({1: s, 2: s[:cut]})


@settings(max_examples=150, deadline=None)
@given(seq, seq)
def test_prefix_consistency_detects_first_divergence(a, b):
    result = check_prefix_consistency({1: a, 2: b})
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    assert bool(result) == (longer[:len(shorter)] == shorter)


@settings(max_examples=150, deadline=None)
@given(st.lists(st.integers(0, 20), max_size=15, unique=True),
       st.data())
def test_any_subset_in_order_is_a_subsequence(observed, data):
    picked = data.draw(st.lists(st.sampled_from(observed or [0]),
                                unique=True, max_size=len(observed)))
    # Keep picked items in the order they appear in `observed`.
    expected = [x for x in observed if x in set(picked)]
    assert check_subsequence(expected, observed)


@settings(max_examples=200, deadline=None)
@given(st.dictionaries(st.text(max_size=6),
                       st.integers() | st.text(max_size=8) | st.none(),
                       max_size=10),
       st.dictionaries(st.text(max_size=6),
                       st.integers() | st.text(max_size=8) | st.none(),
                       max_size=10))
def test_state_delta_apply_roundtrip_property(old, new):
    delta = state_delta(old, new)
    state = dict(old)
    apply_delta(state, delta)
    assert state == new


@settings(max_examples=150, deadline=None)
@given(st.dictionaries(st.text(max_size=6), st.integers(), max_size=10))
def test_state_delta_of_identity_is_empty_property(state):
    assert state_delta(state, dict(state)) == {}
