"""The work queue: semantics anomalies made concrete, per micro-protocol.

Each test removes (or keeps) one property and shows the exact queue
anomaly the taxonomy predicts: duplicate jobs without unique execution,
lost jobs on re-executed dequeues, reordered jobs without FIFO.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import WorkQueue

FAST = LinkSpec(delay=0.005, jitter=0.0)
LOSSY = LinkSpec(delay=0.01, jitter=0.005, loss=0.2)


def drain(cluster, n):
    """Dequeue up to n jobs via the RPC path; returns them in order."""
    jobs = []
    for _ in range(n):
        result = cluster.call_and_run("dequeue", {}, extra_time=0.2)
        assert result.ok
        if result.args is not None:
            jobs.append(result.args)
    return jobs


def test_queue_basics_through_rpc():
    spec = ServiceSpec(unique=True, bounded=5.0)
    cluster = ServiceCluster(spec, WorkQueue, n_servers=1,
                             default_link=FAST)
    for i in range(3):
        assert cluster.call_and_run("enqueue", {"job": f"j{i}"},
                                    extra_time=0.1).ok
    assert cluster.call_and_run("size", {}).args == 3
    assert cluster.call_and_run("peek", {}).args == "j0"
    assert drain(cluster, 3) == ["j0", "j1", "j2"]
    assert cluster.call_and_run("dequeue", {}).args is None
    assert cluster.call_and_run("drained", {}).args == \
        ["j0", "j1", "j2"]


def test_exactly_once_prevents_duplicate_jobs_under_loss():
    spec = ServiceSpec(unique=True, bounded=30.0, retrans_timeout=0.04)
    cluster = ServiceCluster(spec, WorkQueue, n_servers=1, seed=6,
                             default_link=LOSSY)
    for i in range(8):
        assert cluster.call_and_run("enqueue", {"job": f"j{i}"},
                                    extra_time=0.2).ok
    assert cluster.app(1).jobs == [f"j{i}" for i in range(8)]


def test_at_least_once_duplicates_jobs_under_loss():
    # The control: remove Unique Execution and the same fault load
    # yields duplicate jobs in the queue — the anomaly, on demand.
    spec = ServiceSpec(unique=False, bounded=30.0, retrans_timeout=0.04)
    duplicates = 0
    for seed in range(4):
        cluster = ServiceCluster(spec, WorkQueue, n_servers=1, seed=seed,
                                 default_link=LOSSY)
        for i in range(8):
            assert cluster.call_and_run("enqueue", {"job": f"j{i}"},
                                        extra_time=0.2).ok
        jobs = cluster.app(1).jobs
        duplicates += len(jobs) - len(set(jobs))
    assert duplicates > 0


def test_reexecuted_dequeue_loses_jobs_without_unique_execution():
    # A dequeue that re-executes pops a SECOND job whose value the
    # client never sees: data loss, not just duplication.
    from repro.faults import drop_first, replies_from

    spec = ServiceSpec(unique=False, bounded=30.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, WorkQueue, n_servers=1,
                             default_link=FAST)
    for i in range(3):
        cluster.call_and_run("enqueue", {"job": f"j{i}"}, extra_time=0.1)
    drop_first(cluster.fabric, 1, replies_from(1))   # lose one reply
    got = cluster.call_and_run("dequeue", {}, extra_time=0.5)
    assert got.ok
    # Two jobs left the queue for one successful client dequeue.
    assert len(cluster.app(1).dequeued) == 2
    # With unique=True the same scenario pops exactly one (covered by
    # test_exactly_once_replays_stored_reply_when_reply_lost).


def test_fifo_keeps_submission_order_across_replicas():
    spec = ServiceSpec(unique=True, ordering="fifo", acceptance=2,
                       bounded=0.0)
    cluster = ServiceCluster(spec, WorkQueue, n_servers=2, seed=9,
                             default_link=LinkSpec(delay=0.01,
                                                   jitter=0.08))
    client = cluster.client

    async def scenario():
        tasks = []
        for i in range(6):
            async def one(job=f"j{i}"):
                await cluster.call(client, "enqueue", {"job": job})
            tasks.append(cluster.spawn_client(client, one()))
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    for pid in cluster.server_pids:
        assert cluster.app(pid).jobs == [f"j{i}" for i in range(6)]


def test_without_fifo_replicas_can_reorder_submissions():
    reordered = 0
    for seed in range(5):
        spec = ServiceSpec(unique=True, ordering="none", acceptance=2,
                           bounded=0.0)
        cluster = ServiceCluster(spec, WorkQueue, n_servers=2, seed=seed,
                                 default_link=LinkSpec(delay=0.01,
                                                       jitter=0.08))
        client = cluster.client

        async def scenario():
            tasks = []
            for i in range(6):
                async def one(job=f"j{i}"):
                    await cluster.call(client, "enqueue", {"job": job})
                tasks.append(cluster.spawn_client(client, one()))
            for task in tasks:
                await cluster.runtime.join(task)

        cluster.run_scenario(scenario(), extra_time=2.0)
        expected = [f"j{i}" for i in range(6)]
        if any(cluster.app(pid).jobs != expected
               for pid in cluster.server_pids):
            reordered += 1
    assert reordered > 0
