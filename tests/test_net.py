"""Unit tests for the network substrate: fabric, nodes, transport."""

import pytest

from repro.errors import NodeDown
from repro.net import (
    Group,
    LinkSpec,
    NetworkFabric,
    Node,
    UnreliableTransport,
)
from repro.runtime import SimRuntime
from repro.sim import RandomSource
from repro.xkernel import Protocol, compose_stack


class Collector(Protocol):
    """Top protocol recording everything popped up to it."""

    def __init__(self, name="collector"):
        super().__init__(name)
        self.received = []

    async def pop(self, payload, sender):
        self.received.append((sender, payload))


def build_pair(runtime, **fabric_kwargs):
    fabric = NetworkFabric(runtime, **fabric_kwargs)
    nodes, tops = {}, {}
    for pid in (1, 2):
        node = Node(pid, runtime, fabric)
        top = Collector(f"top@{pid}")
        compose_stack(top, UnreliableTransport(node))
        node.start()
        nodes[pid], tops[pid] = node, top
    return fabric, nodes, tops


def test_basic_delivery():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)

    async def main():
        await nodes[1].transport.push(2, "hello")
        await rt.sleep(1.0)

    rt.run(main())
    assert tops[2].received == [(1, "hello")]
    assert fabric.trace.sends == 1
    assert fabric.trace.deliveries == 1


def test_delivery_takes_link_delay():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, default_link=LinkSpec(delay=0.2, jitter=0.0))
    arrival = []

    async def main():
        await nodes[1].transport.push(2, "x")
        await rt.sleep(1.0)

    fabric.trace.observers.append(
        lambda e: arrival.append(e.time) if e.kind == "deliver" else None)
    rt.run(main())
    assert arrival == [pytest.approx(0.2)]


def test_loss_drops_messages():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(42),
        default_link=LinkSpec(loss=1.0))

    async def main():
        for _ in range(5):
            await nodes[1].transport.push(2, "gone")
        await rt.sleep(1.0)

    rt.run(main())
    assert tops[2].received == []
    assert fabric.trace.losses == 5


def test_statistical_loss_rate():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(7), default_link=LinkSpec(loss=0.3))

    async def main():
        for i in range(500):
            await nodes[1].transport.push(2, i)
        await rt.sleep(5.0)

    rt.run(main())
    delivered = len(tops[2].received)
    assert 290 < delivered < 410  # ~350 expected


def test_duplication():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(3), default_link=LinkSpec(duplicate=1.0))

    async def main():
        await nodes[1].transport.push(2, "twice")
        await rt.sleep(1.0)

    rt.run(main())
    assert tops[2].received == [(1, "twice"), (1, "twice")]
    assert fabric.trace.duplicates == 1


def test_reordering_from_jitter():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, rand=RandomSource(11),
        default_link=LinkSpec(delay=0.01, jitter=0.10))

    async def main():
        for i in range(50):
            await nodes[1].transport.push(2, i)
        await rt.sleep(2.0)

    rt.run(main())
    payloads = [p for _, p in tops[2].received]
    assert len(payloads) == 50
    assert payloads != sorted(payloads)  # jitter reorders


def test_spike_delay():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, default_link=LinkSpec(delay=0.01, jitter=0.0,
                                  spike_prob=1.0, spike_delay=2.0))
    times = []
    fabric.trace.observers.append(
        lambda e: times.append(e.time) if e.kind == "deliver" else None)

    async def main():
        await nodes[1].transport.push(2, "slow")
        await rt.sleep(5.0)

    rt.run(main())
    assert times == [pytest.approx(2.01)]


def test_partition_blocks_and_heals():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)

    async def main():
        fabric.partition([1], [2])
        await nodes[1].transport.push(2, "blocked")
        await rt.sleep(1.0)
        fabric.heal()
        await nodes[1].transport.push(2, "through")
        await rt.sleep(1.0)

    rt.run(main())
    assert tops[2].received == [(1, "through")]
    assert fabric.trace.counts["drop-partition"] == 1


def test_filter_drop_and_removal():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)

    async def main():
        remove = fabric.add_filter(lambda env: env.payload != "bad")
        await nodes[1].transport.push(2, "bad")
        await nodes[1].transport.push(2, "good")
        await rt.sleep(1.0)
        remove()
        await nodes[1].transport.push(2, "bad")
        await rt.sleep(1.0)

    rt.run(main())
    assert [p for _, p in tops[2].received] == ["good", "bad"]


def test_delivery_to_down_node_dropped():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)

    async def main():
        nodes[2].crash()
        await nodes[1].transport.push(2, "lost")
        await rt.sleep(1.0)

    rt.run(main())
    assert tops[2].received == []
    assert fabric.trace.counts["drop-dead"] == 1


def test_crash_cancels_node_tasks_and_clears_inbox():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)
    progress = []

    async def long_task():
        progress.append("start")
        await rt.sleep(100)
        progress.append("end")  # must never happen

    async def main():
        nodes[2].spawn(long_task())
        await rt.sleep(1.0)
        nodes[2].crash()
        await rt.sleep(200)

    rt.run(main())
    assert progress == ["start"]


def test_message_in_flight_to_crashing_node_lost():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(
        rt, default_link=LinkSpec(delay=1.0, jitter=0.0))

    async def main():
        await nodes[1].transport.push(2, "in-flight")
        await rt.sleep(0.5)
        nodes[2].crash()
        await rt.sleep(2.0)

    rt.run(main())
    assert tops[2].received == []


def test_recovery_bumps_incarnation_and_restarts_delivery():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)
    recoveries = []
    nodes[2].recover_listeners.append(recoveries.append)

    async def main():
        nodes[2].crash()
        await rt.sleep(1.0)
        nodes[2].recover()
        await nodes[1].transport.push(2, "after")
        await rt.sleep(1.0)

    rt.run(main())
    assert recoveries == [2]
    assert nodes[2].incarnation == 2
    assert tops[2].received == [(1, "after")]


def test_crash_listener_fires():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)
    crashed = []
    nodes[1].crash_listeners.append(lambda: crashed.append(True))

    async def main():
        nodes[1].crash()

    rt.run(main())
    assert crashed == [True]


def test_spawn_on_down_node_raises():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)

    async def never():
        pass  # pragma: no cover

    async def main():
        nodes[1].crash()
        with pytest.raises(NodeDown):
            nodes[1].spawn(never())

    rt.run(main())


def test_multicast_reaches_all_members():
    rt = SimRuntime()
    fabric = NetworkFabric(rt)
    tops = {}
    for pid in (1, 2, 3, 4):
        node = Node(pid, rt, fabric)
        top = Collector(f"top@{pid}")
        compose_stack(top, UnreliableTransport(node))
        node.start()
        tops[pid] = top
    group = Group("servers", [2, 3, 4])

    async def main():
        await fabric.node(1).transport.push(group, "all")
        await rt.sleep(1.0)

    rt.run(main())
    for pid in (2, 3, 4):
        assert tops[pid].received == [(1, "all")]
    assert tops[1].received == []


def test_group_properties_and_leader():
    group = Group("g", [3, 1, 2, 2])
    assert group.members == (1, 2, 3)
    assert len(group) == 3
    assert 2 in group
    assert group.leader() == 3
    assert group.leader(alive={1, 2}) == 2
    with pytest.raises(ValueError):
        group.leader(alive=set())
    with pytest.raises(ValueError):
        Group("empty", [])


def test_per_link_override_and_slow_site():
    rt = SimRuntime()
    fabric = NetworkFabric(rt, default_link=LinkSpec(delay=0.01, jitter=0.0))
    tops = {}
    for pid in (1, 2, 3):
        node = Node(pid, rt, fabric)
        top = Collector(f"top@{pid}")
        compose_stack(top, UnreliableTransport(node))
        node.start()
        tops[pid] = top
    fabric.set_links_to(3, LinkSpec(delay=1.0, jitter=0.0))
    times = {}

    def observe(e):
        if e.kind == "deliver":
            times[e.dst] = e.time
    fabric.trace.observers.append(observe)

    async def main():
        await fabric.node(1).transport.push(2, "fast")
        await fabric.node(1).transport.push(3, "slow")
        await rt.sleep(5.0)

    rt.run(main())
    assert times[2] == pytest.approx(0.01)
    assert times[3] == pytest.approx(1.0)


def test_fabric_determinism_across_runs():
    def run_once():
        rt = SimRuntime()
        fabric, nodes, tops = build_pair(
            rt, rand=RandomSource(99),
            default_link=LinkSpec(delay=0.01, jitter=0.05, loss=0.2,
                                  duplicate=0.1))

        async def main():
            for i in range(100):
                await nodes[1].transport.push(2, i)
            await rt.sleep(10.0)

        rt.run(main())
        return [p for _, p in tops[2].received]

    assert run_once() == run_once()


def test_alive_pids_tracks_crashes():
    rt = SimRuntime()
    fabric, nodes, tops = build_pair(rt)
    assert fabric.alive_pids() == {1, 2}

    async def main():
        nodes[1].crash()

    rt.run(main())
    assert fabric.alive_pids() == {2}
