"""The paper's four event-dispatch modes (Section 3)."""

import pytest

from repro.core.events import EventBus
from repro.runtime import SimRuntime


def make_bus():
    rt = SimRuntime()
    return rt, EventBus(rt)


def test_nonblocking_sequential_caller_continues():
    rt, bus = make_bus()
    order = []

    async def slow_handler():
        await rt.sleep(1.0)
        order.append("handler")

    bus.register("E", slow_handler)

    async def main():
        bus.trigger_nonblocking("E")
        order.append("caller")
        await rt.sleep(2.0)

    rt.run(main())
    assert order == ["caller", "handler"]


def test_nonblocking_preserves_sequential_order_and_cancel():
    rt, bus = make_bus()
    order = []

    async def first():
        order.append("first")
        bus.cancel_event()

    async def second():
        order.append("second")   # pragma: no cover - must be skipped

    bus.register("E", first, 1)
    bus.register("E", second, 2)

    async def main():
        bus.trigger_nonblocking("E")
        await rt.sleep(1.0)

    rt.run(main())
    assert order == ["first"]


def test_concurrent_blocking_waits_for_all_handlers():
    rt, bus = make_bus()
    done = []

    def make_handler(tag, delay):
        async def handler():
            await rt.sleep(delay)
            done.append((tag, rt.now()))
        return handler

    bus.register("E", make_handler("slow", 2.0), 1)
    bus.register("E", make_handler("fast", 0.5), 2)

    async def main():
        await bus.trigger_concurrent("E")
        return rt.now()

    finished_at = rt.run(main())
    # Handlers overlapped (fast finished first despite lower priority)...
    assert done == [("fast", 0.5), ("slow", 2.0)]
    # ...and the blocking trigger waited for the slowest, not the sum.
    assert finished_at == pytest.approx(2.0)


def test_concurrent_nonblocking_returns_immediately():
    rt, bus = make_bus()
    done = []

    async def handler():
        await rt.sleep(1.0)
        done.append("handler")

    bus.register("E", handler)

    async def main():
        await bus.trigger_concurrent("E", blocking=False)
        done.append("caller")
        await rt.sleep(2.0)

    rt.run(main())
    assert done == ["caller", "handler"]


def test_concurrent_handlers_receive_arguments():
    rt, bus = make_bus()
    received = []

    async def handler(a, b):
        received.append((a, b))

    bus.register("E", handler)

    async def main():
        await bus.trigger_concurrent("E", 1, "two")

    rt.run(main())
    assert received == [(1, "two")]


def test_cancel_event_in_concurrent_mode_is_per_handler():
    rt, bus = make_bus()
    ran = []

    async def canceller():
        ran.append("canceller")
        bus.cancel_event()   # no shared sequence: siblings unaffected

    async def sibling():
        await rt.sleep(0.1)
        ran.append("sibling")

    bus.register("E", canceller, 1)
    bus.register("E", sibling, 2)

    async def main():
        await bus.trigger_concurrent("E")

    rt.run(main())
    assert sorted(ran) == ["canceller", "sibling"]
