"""The configurability claim, exhaustively: all 186 services work.

The paper's punchline is that one system yields 198 (strictly, 186)
distinct RPC services by composition.  This sweep instantiates every
strict configuration from the Figure-4 enumeration on a real simulated
deployment and pushes a call through it — the strongest executable form
of "a single, configurable system is used to construct different
variants of RPC".
"""

import pytest

from repro import LinkSpec, ServiceCluster, Status
from repro.apps import KVStore
from repro.core.enumerate import enumerate_services

FAST = LinkSpec(delay=0.005, jitter=0.0)

ALL_SPECS = enumerate_services().strict_specs


def spec_id(spec):
    bits = [spec.call[:4], spec.orphans, spec.execution,
            "U" if spec.unique else "u", "R" if spec.reliable else "r",
            "B" if spec.bounded else "b", spec.ordering]
    return "-".join(bits)


def serve_one_call(spec) -> Status:
    cluster = ServiceCluster(spec, KVStore, n_servers=2,
                             default_link=FAST, keep_trace=False)
    outcome = {}

    async def client():
        grpc = cluster.grpc(cluster.client)
        result = await grpc.call("put", {"key": "k", "value": 1},
                                 cluster.group)
        if spec.call == "asynchronous":
            result = await grpc.request(result.id)
        outcome["status"] = result.status

    task = cluster.spawn_client(cluster.client, client())

    async def waiter():
        await cluster.runtime.join(task)

    cluster.run_scenario(waiter(), extra_time=0.3)
    return outcome["status"]


def test_every_strict_configuration_serves_a_call():
    assert len(ALL_SPECS) == 186
    failures = []
    for spec in ALL_SPECS:
        try:
            status = serve_one_call(spec)
        except BaseException as exc:  # noqa: BLE001 - collect, report all
            failures.append(f"{spec_id(spec)}: raised {exc!r}")
            continue
        if status is not Status.OK:
            failures.append(f"{spec_id(spec)}: returned {status}")
    assert not failures, "\n".join(failures[:20])


@pytest.mark.parametrize("spec", [
    s for s in ALL_SPECS
    if s.ordering == "total" and s.execution == "atomic"
], ids=spec_id)
def test_heaviest_composites_individually(spec):
    """The maximal stacks (total order + atomic + orphans) get their own
    test ids so a regression names the exact configuration."""
    assert serve_one_call(spec) is Status.OK
