"""The replicated placement metadata plane: views, epochs, failover.

Covers the :class:`~repro.placement.view.PlacementView` lattice laws,
blob round-tripping, epoch monotonicity, stale-epoch call fencing
through a pinned :class:`~repro.apps.sharding.RingRouter`, the reply
cache's epoch stamping, the driver-lifecycle registry, and the
coordinator-failover matrix: a coordinator killed at each migration
phase is either rolled back or resumed by an elected successor with
every acknowledged write intact — including when the migration's
supervising caller dies *with* the coordinator and recovery must start
from the membership stream alone.
"""

import pytest

from repro import Deployment, HashRing, build_elastic_kv
from repro.apps.sharding import RingRouter, ShardedKV
from repro.core.messages import Status
from repro.core.replycache import ReplyCache
from repro.errors import ViewError
from repro.placement import PlacementView, ViewManager

KEYS = [f"key-{i}" for i in range(60)]


def _view(epoch=0, shards=("a", "b"), **kw):
    ring = HashRing(shards, vnodes=16, seed=3)
    return PlacementView.make(epoch=epoch, ring=ring, **kw)


# ---------------------------------------------------------------------------
# The lattice
# ---------------------------------------------------------------------------


def test_join_is_idempotent_commutative_associative():
    a = _view(epoch=2, shards=("a", "b"),
              bindings={"a": (1,), "b": (2,)},
              moves=[("a", "b")], dead=["c"])
    b = _view(epoch=2, shards=("b", "c"),
              bindings={"b": (2, 3), "c": (4,)},
              moves=[("b", "c")])
    c = _view(epoch=2, shards=("a", "c"), dead=["b"])
    assert a.join(a) == a
    assert a.join(b) == b.join(a)
    assert a.join(b).join(c) == a.join(b.join(c))
    merged = a.join(b)
    # Equal epochs merge componentwise: unions everywhere.
    assert set(merged.shards) == {"a", "b", "c"}
    assert merged.binding("b") == (2, 3)
    assert set(merged.moves) == {("a", "b"), ("b", "c")}


def test_join_higher_epoch_dominates_outright():
    old = _view(epoch=1, shards=("a", "b", "c"),
                moves=[("a", "b")], dead=["c"])
    new = _view(epoch=2, shards=("a", "b"))
    # No componentwise merge across epochs: the retired generation's
    # moves and dead set must not leak into the successor.
    assert old.join(new) == new
    assert new.join(old) == new


def test_blob_roundtrip_and_malformed_blob():
    view = _view(epoch=3, shards=("a", "b"),
                 bindings={"a": (1, 2)}, moves=[("a", "b")], dead=["x"])
    assert PlacementView.from_blob(view.to_blob()) == view
    with pytest.raises(ViewError):
        PlacementView.from_blob({"shards": ["a"]})       # no epoch
    with pytest.raises(ViewError):
        PlacementView.from_blob({"epoch": "not-a-number",
                                 "shards": [], "vnodes": 8, "seed": 0})


def test_view_rebuilds_the_exact_ring():
    ring = HashRing(["s0", "s1", "s2"], vnodes=32, seed=11)
    view = PlacementView.make(epoch=0, ring=ring)
    rebuilt = view.ring()
    assert [ring.route(k) for k in KEYS] == \
           [rebuilt.route(k) for k in KEYS]
    assert view.route(KEYS[0]) == ring.route(KEYS[0])


# ---------------------------------------------------------------------------
# ViewManager: installation, monotonicity, persistence
# ---------------------------------------------------------------------------


def test_manager_installs_once_and_epochs_only_move_forward():
    dep = Deployment(seed=31)
    plane, kv = build_elastic_kv(dep, 2, clients=2)
    views = dep.views
    assert ViewManager.ensure(dep) is views          # idempotent
    with pytest.raises(ViewError):
        ViewManager(dep)                             # double-install
    views.commit(views.current.with_(epoch=2))
    with pytest.raises(ViewError):
        views.sync(views.current.with_(epoch=1))
    with pytest.raises(ViewError):
        views.commit(views.current.with_(epoch=1))
    views.close()
    assert dep.views is None
    assert views not in dep.drivers


def test_recovery_joins_every_replica_copy():
    dep = Deployment(seed=32)
    plane, kv = build_elastic_kv(dep, 2, clients=2)
    views = dep.views
    # Divergent same-epoch copies on the two metadata replicas (as a
    # crash between fanout writes would leave them).
    a, b = views.replicas
    dep.nodes[a].stable.put("placement.view.current",
                            views.current.with_(dead=("shard-0",))
                            .to_blob())
    dep.nodes[b].stable.put("placement.view.current",
                            views.current.with_(moves=[("shard-0",
                                                        "shard-1")])
                            .to_blob())
    joined = views.recover_view()
    assert joined.dead == ("shard-0",)
    assert joined.moves == (("shard-0", "shard-1"),)
    # A dead replica's disk still counts: salvage reads join it too.
    dep.crash(a)
    assert views.recover_view().dead == ("shard-0",)


# ---------------------------------------------------------------------------
# Stale-epoch fencing and the reply cache
# ---------------------------------------------------------------------------


def test_stale_epoch_call_bounces_and_router_repins():
    dep = Deployment(seed=33)
    plane, kv = build_elastic_kv(dep, 3, clients=2)
    router = RingRouter(plane.shards, metrics=dep.metrics)
    router.pin(dep.views)
    assert router.view_epoch == 0
    skv = ShardedKV(dep, plane.coordinator, router)

    async def scenario():
        for i, key in enumerate(KEYS):
            assert (await skv.put(key, i)).ok
        await plane.add_shard()          # epoch 0 -> 1 under the router
        assert router.view_epoch == 0    # still pinned to the old view
        for i, key in enumerate(KEYS):
            result = await skv.get(key)
            assert result.ok and result.args == i

    dep.run_scenario(scenario())
    # The first post-migration call bounced (REDIRECT, nothing
    # dispatched), the router re-pinned, and every later call sailed.
    assert router.view_epoch == 1
    assert dep.metrics.value("placement.view.stale_bounces") == 1
    bounce = dep.views.redirect_result()
    assert bounce.status is Status.REDIRECT and not bounce.ok
    assert bounce.args == {"epoch": 1}


def test_reply_cache_records_the_completion_epoch():
    cache = ReplyCache(capacity=2)
    from repro.core.messages import CallResult
    cache.put(7, 1, CallResult(id=1, status=Status.OK, args=1), epoch=0)
    cache.put(7, 2, CallResult(id=2, status=Status.OK, args=2), epoch=3)
    assert cache.epoch_of(7, 1) == 0
    assert cache.epoch_of(7, 2) == 3
    cache.put(7, 3, CallResult(id=3, status=Status.OK, args=3), epoch=4)
    # LRU eviction drops the epoch record with the entry.
    assert cache.epoch_of(7, 1) is None
    assert cache.epoch_of(7, 3) == 4


def test_deployment_stamps_cache_entries_with_the_view_epoch():
    dep = Deployment(seed=34)
    plane, kv = build_elastic_kv(dep, 2, clients=2)

    async def scenario():
        assert (await kv.put("k", 1)).ok
        await plane.add_shard()
        assert (await kv.put("k", 2)).ok

    dep.run_scenario(scenario())
    epochs = set()
    for cache in dep.reply_caches.values():
        epochs.update(cache._epochs.values())
    assert {0, 1} <= epochs


# ---------------------------------------------------------------------------
# Driver lifecycle registry
# ---------------------------------------------------------------------------


def test_double_auto_rebind_replaces_instead_of_stacking():
    dep = Deployment(seed=35)
    plane, kv = build_elastic_kv(dep, 2, clients=2)
    first = dep.auto_rebind(plane=plane)
    second = dep.auto_rebind(plane=plane)
    rebinders = [d for d in dep.drivers if type(d) is type(second)]
    assert rebinders == [second]
    assert first not in dep.drivers
    dep.shutdown()
    assert dep.drivers == []


# ---------------------------------------------------------------------------
# Coordinator failover
# ---------------------------------------------------------------------------


def _preload(dep, kv, values):
    async def go():
        for i, key in enumerate(KEYS):
            values[key] = i
            assert (await kv.put(key, i)).ok
    dep.run_scenario(go())


def _arm_crash(dep, plane, victim, phase):
    """Kill ``victim`` from a separate daemon task the first time the
    migration reaches ``phase`` (a task cannot cancel itself)."""
    fired = []

    async def killer():
        dep.crash(victim)

    def hook(p):
        if p == phase and not fired:
            fired.append(p)
            dep.runtime.spawn(killer(), name="killer", daemon=True)

    plane.phase_hook = hook
    return fired


@pytest.mark.parametrize("phase,outcome", [
    ("snapshot", "rollback"),
    ("transfer", "rollback"),
    ("catchup", "resume"),
    ("cutover", "resume"),
])
def test_coordinator_crash_at_each_phase(phase, outcome):
    dep = Deployment(seed=36, observatory=True)
    plane, kv = build_elastic_kv(dep, 3, clients=3)
    dep.auto_rebind(plane=plane)
    victim = plane.coordinator
    worker = [p for p in plane.coordinators if p != victim][0]
    values = {}
    _preload(dep, kv, values)
    _arm_crash(dep, plane, victim, phase)
    from repro.placement import ElasticKV
    audit_kv = ElasticKV(plane, worker)

    async def scenario():
        await plane.add_shard()
        for key in KEYS:
            result = await audit_kv.get(key)
            assert result.ok and result.args == values[key], key

    dep.run_scenario(scenario(), extra_time=0.5)
    assert plane.coordinator != victim
    assert dep.metrics.value("placement.view.takeovers") == 1
    tapes = [kind for _, _, kind, _ in dep.flight.entries()
             if kind in ("view-propose", "coord-takeover",
                         "view-commit", "view-rollback")]
    assert tapes[0] == "view-propose"
    assert "coord-takeover" in tapes
    if outcome == "rollback":
        assert plane.epoch == 0 and len(plane.ring) == 3
        assert tapes[-1] == "view-rollback"
        assert dep.views.load_plan() is None
    else:
        assert plane.epoch == 1 and len(plane.ring) == 4
        assert tapes[-1] == "view-commit"
        assert dep.views.load_plan() is None


def test_drain_of_dead_shard_resumes_through_coordinator_crash():
    dep = Deployment(seed=37, observatory=True)
    plane, kv = build_elastic_kv(dep, 3, clients=3)
    victim = plane.coordinator
    worker = [p for p in plane.coordinators if p != victim][0]
    values = {}
    _preload(dep, kv, values)
    for pid in dep.services["shard-1"].server_pids:
        dep.crash(pid)
    # A drain parks early, so a warm-phase coordinator crash must
    # *resume* (the dead source cannot serve its keys regardless).
    _arm_crash(dep, plane, victim, "snapshot")
    from repro.placement import ElasticKV
    audit_kv = ElasticKV(plane, worker)

    async def scenario():
        await plane.drain_dead_shard("shard-1")
        for key in KEYS:
            result = await audit_kv.get(key)
            assert result.ok and result.args == values[key], key

    dep.run_scenario(scenario(), extra_time=0.5)
    assert plane.epoch == 1
    assert "shard-1" not in plane.ring
    assert dep.metrics.value("placement.view.takeovers") == 1


def test_stranded_plan_recovered_from_membership_stream():
    """The supervising caller runs *on the coordinator's node* and dies
    with it: nobody is left awaiting the migration, so recovery must
    start from the membership stream
    (:meth:`PlacementPlane.on_coordinator_suspected`)."""
    dep = Deployment(seed=38, observatory=True)
    plane, kv = build_elastic_kv(dep, 3, clients=3)
    dep.auto_rebind(plane=plane)
    victim = plane.coordinator
    worker = [p for p in plane.coordinators if p != victim][0]
    values = {}
    _preload(dep, kv, values)
    _arm_crash(dep, plane, victim, "catchup")
    from repro.placement import ElasticKV
    audit_kv = ElasticKV(plane, worker)

    async def grow():
        await plane.add_shard()

    async def scenario():
        runtime = dep.runtime
        dep.spawn_client(victim, grow(), name="grow-on-coordinator")
        deadline = runtime.now() + 20.0
        while plane.epoch == 0 and runtime.now() < deadline:
            await runtime.sleep(0.05)
        assert plane.epoch == 1, "stranded migration was never recovered"
        for key in KEYS:
            result = await audit_kv.get(key)
            assert result.ok and result.args == values[key], key

    dep.run_scenario(scenario(), extra_time=0.5)
    assert len(plane.ring) == 4
    assert plane.coordinator != victim
    assert dep.views.load_plan() is None


def test_idle_coordinator_crash_is_a_quiet_takeover():
    dep = Deployment(seed=39, observatory=True)
    plane, kv = build_elastic_kv(dep, 3, clients=3)
    dep.auto_rebind(plane=plane)
    victim = plane.coordinator
    values = {}
    _preload(dep, kv, values)
    dep.crash(victim)                    # no migration in flight

    async def scenario():
        await dep.runtime.sleep(0.5)     # let recovery tasks settle
        assert plane.epoch == 0          # nothing to recover
        await plane.add_shard()          # next reshape just re-elects

    dep.run_scenario(scenario(), extra_time=0.5)
    assert plane.epoch == 1
    assert plane.coordinator != victim
    assert dep.metrics.value("placement.view.rollbacks") == 0
