"""Focused unit tests for micro-protocol pieces and framework wiring."""

import pytest

from repro import Group, LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import KVStore
from repro.core.framework import CompositeProtocol, MicroProtocol
from repro.core.messages import MemChange
from repro.core.microprotocols import (
    ALL,
    Acceptance,
    BoundedTermination,
    Prio,
    ReliableCommunication,
    all_replies,
    average,
    first_reply,
    last_reply,
    majority_vote,
)
from repro.errors import ConfigurationError, ReproError
from repro.runtime import SimRuntime

FAST = LinkSpec(delay=0.005, jitter=0.0)


# ----------------------------------------------------------------------
# Priorities
# ----------------------------------------------------------------------

def test_priority_ladder_is_ordered_as_documented():
    assert Prio.RELIABLE < Prio.MAIN_DEDUP < Prio.UNIQUE \
        < Prio.ORPHAN < Prio.UNIQUE_ADMIT < Prio.MAIN
    assert Prio.MAIN <= Prio.ACCEPTANCE < Prio.COLLATION <= Prio.TOTAL \
        < Prio.FIFO
    assert Prio.TOTAL_ASSIGN < Prio.MAIN


# ----------------------------------------------------------------------
# Collation functions (pure)
# ----------------------------------------------------------------------

def test_stock_collators():
    assert last_reply("old", "new") == "new"
    assert first_reply(None, "a") == "a"
    assert first_reply("a", "b") == "a"
    acc = []
    acc = all_replies(acc, 1)
    acc = all_replies(acc, 2)
    assert acc == [1, 2]
    acc = average(None, 10.0)
    acc = average(acc, 20.0)
    assert acc == (15.0, 2)
    votes = majority_vote({}, "x")
    votes = majority_vote(votes, "x")
    votes = majority_vote(votes, "y")
    assert votes == {"x": 2, "y": 1}
    assert max(votes, key=votes.get) == "x"


# ----------------------------------------------------------------------
# Constructor validation
# ----------------------------------------------------------------------

def test_microprotocol_parameter_validation():
    with pytest.raises(ValueError):
        ReliableCommunication(0.0)
    with pytest.raises(ValueError):
        BoundedTermination(0.0)
    with pytest.raises(ValueError):
        Acceptance(0)


# ----------------------------------------------------------------------
# Framework wiring
# ----------------------------------------------------------------------

def test_microprotocol_cannot_attach_twice():
    rt = SimRuntime()

    class Noop(MicroProtocol):
        def configure(self):
            pass

    composite_a = CompositeProtocol("a", rt)
    composite_b = CompositeProtocol("b", rt)
    micro = Noop()
    composite_a.add(micro)
    with pytest.raises(ConfigurationError):
        composite_b.add(micro)


def test_composite_micro_lookup():
    rt = SimRuntime()

    class Named(MicroProtocol):
        protocol_name = "The_One"

        def configure(self):
            pass

    composite = CompositeProtocol("c", rt)
    named = Named()
    composite.add(named)
    assert composite.micro("The_One") is named
    assert composite.has_micro("The_One")
    assert not composite.has_micro("The_Other")
    with pytest.raises(KeyError):
        composite.micro("The_Other")


def test_microprotocol_default_name_is_class_name():
    class Anon(MicroProtocol):
        def configure(self):
            pass

    assert Anon().name == "Anon"


# ----------------------------------------------------------------------
# GroupRPC membership surface
# ----------------------------------------------------------------------

def test_membership_surface_defaults_and_updates():
    cluster = ServiceCluster(ServiceSpec(), KVStore, n_servers=2,
                             default_link=FAST)
    grpc = cluster.grpc(cluster.client)
    # No membership service: everyone presumed alive.
    assert grpc.members is None
    assert grpc.is_member_alive(1)
    assert grpc.is_member_alive(999)
    grpc.set_members({1, 2})
    assert not grpc.is_member_alive(999)
    grpc.membership_change(2, MemChange.FAILURE)
    assert grpc.members == {1}
    grpc.membership_change(2, MemChange.RECOVERY)
    assert grpc.members == {1, 2}
    cluster.settle(0.01)   # drain the spawned MEMBERSHIP_CHANGE events


# ----------------------------------------------------------------------
# Acceptance behavior details
# ----------------------------------------------------------------------

def test_acceptance_limit_clamped_to_group_size():
    cluster = ServiceCluster(ServiceSpec(acceptance=ALL, bounded=10.0),
                             KVStore, n_servers=2, default_link=FAST)
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.2)
    assert result.ok   # ALL with 2 members means 2, not 10^9


def test_late_replies_after_completion_are_harmless():
    # acceptance=1 of 3: two replies arrive after the record is retired;
    # the event chain is cancelled and nothing misbehaves.
    cluster = ServiceCluster(ServiceSpec(acceptance=1, bounded=10.0),
                             KVStore, n_servers=3, default_link=FAST)
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=0.5)
    assert result.ok
    assert len(cluster.grpc(cluster.client).pRPC) == 0


def test_status_ok_not_overwritten_by_late_timeout():
    # The call completes quickly; the bounded-termination timer fires
    # later against a missing/settled record without corrupting anything.
    cluster = ServiceCluster(ServiceSpec(acceptance=1, bounded=0.3),
                             KVStore, n_servers=1, default_link=FAST)
    result = cluster.call_and_run("get", {"key": "k"}, extra_time=1.0)
    assert result.status is Status.OK


# ----------------------------------------------------------------------
# ServiceCluster API
# ----------------------------------------------------------------------

def test_cluster_rejects_bad_arguments():
    with pytest.raises(ReproError):
        ServiceCluster(ServiceSpec(), KVStore, n_servers=0)
    with pytest.raises(ReproError):
        ServiceCluster(ServiceSpec(), KVStore, n_servers=1,
                       membership="crystal-ball")


def test_cluster_accessors():
    cluster = ServiceCluster(ServiceSpec(), KVStore, n_servers=2,
                             n_clients=2, default_link=FAST)
    assert cluster.server_pids == [1, 2]
    assert cluster.client == cluster.client_pids[0]
    assert cluster.group == Group("servers", [1, 2])
    assert cluster.node(1).pid == 1
    assert cluster.dispatcher(1).node is cluster.node(1)
    assert cluster.app(1) is cluster.dispatcher(1).app
    assert cluster.trace is cluster.fabric.trace


def test_client_nodes_have_no_dispatcher():
    cluster = ServiceCluster(ServiceSpec(), KVStore, n_servers=1,
                             default_link=FAST)
    assert cluster.client not in cluster.dispatchers
    assert cluster.grpc(cluster.client).upper is None
