"""Crash/recovery of the gRPC composite: incarnations, volatile state."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import CounterApp, KVStore

FAST = LinkSpec(delay=0.005, jitter=0.0)


def test_client_recovery_bumps_incarnation_and_restarts_ids():
    spec = ServiceSpec(bounded=5.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    client = cluster.client
    r1 = cluster.call_and_run("put", {"key": "a", "value": 1})
    assert r1.id == 1
    cluster.crash(client)
    cluster.recover(client)
    cluster.settle(0.1)
    assert cluster.grpc(client).inc_number == 2
    r2 = cluster.call_and_run("put", {"key": "b", "value": 2})
    assert r2.id == 1   # id space restarted with the new incarnation
    assert r2.ok


def test_server_keys_calls_by_incarnation_so_recycled_ids_execute():
    # Same (client, id) after recovery must be a NEW call, not a
    # duplicate — the incarnation in the key disambiguates.
    spec = ServiceSpec(bounded=5.0, unique=True)
    cluster = ServiceCluster(spec, CounterApp, n_servers=1,
                             default_link=FAST)
    client = cluster.client
    assert cluster.call_and_run("inc", {"amount": 1}, extra_time=0.2).ok
    cluster.crash(client)
    cluster.recover(client)
    cluster.settle(0.1)
    assert cluster.call_and_run("inc", {"amount": 1}, extra_time=0.2).ok
    assert cluster.app(1).value == 2


def test_pending_call_dies_with_client_crash():
    spec = ServiceSpec(bounded=0.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    client = cluster.client
    cluster.partition([client], [1])   # call can never complete
    finished = []

    async def doomed():
        await cluster.call(client, "put", {"key": "k", "value": 1})
        finished.append(True)

    async def scenario():
        cluster.spawn_client(client, doomed())
        await cluster.runtime.sleep(0.5)
        cluster.crash(client)
        await cluster.runtime.sleep(0.5)

    cluster.run_scenario(scenario())
    assert finished == []
    assert len(cluster.grpc(client).pRPC) == 0   # volatile table cleared


def test_server_recovery_serves_new_calls_with_fresh_state():
    spec = ServiceSpec(bounded=5.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    assert cluster.call_and_run("put", {"key": "a", "value": 1}).ok
    cluster.crash(1)
    cluster.recover(1)
    cluster.settle(0.1)
    res = cluster.call_and_run("get", {"key": "a"}, extra_time=0.2)
    assert res.ok
    assert res.args is None   # volatile KV data died with the server


def test_server_bounce_during_call_retransmission_completes_it():
    # The call is issued while the server is down; reliable retransmission
    # finishes the job once it comes back.
    spec = ServiceSpec(bounded=0.0, retrans_timeout=0.05)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    cluster.crash(1)
    cluster.runtime.call_later(1.0, lambda: cluster.recover(1))
    result = cluster.call_and_run("put", {"key": "k", "value": 9},
                                  extra_time=0.3)
    assert result.ok
    assert cluster.runtime.now() >= 1.0
    assert cluster.app(1).data == {"k": 9}


def test_crash_disarms_pending_timeouts():
    spec = ServiceSpec(bounded=3.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    client = cluster.client
    cluster.partition([client], [1])

    async def scenario():
        cluster.spawn_client(
            client,
            _ignore_cancel(cluster, client))
        await cluster.runtime.sleep(0.5)
        assert cluster.grpc(client).bus.pending_timeouts() > 0
        cluster.crash(client)
        assert cluster.grpc(client).bus.pending_timeouts() == 0

    cluster.run_scenario(scenario())


def test_recovery_rearms_retransmission_timer():
    spec = ServiceSpec(bounded=5.0)
    cluster = ServiceCluster(spec, KVStore, n_servers=1, default_link=FAST)
    client = cluster.client
    cluster.crash(client)
    cluster.recover(client)
    cluster.settle(0.1)
    # The re-configured Reliable Communication must still retransmit:
    # partition, call, heal after 1s, call completes.
    cluster.partition([client], [1])
    cluster.runtime.call_later(1.0, cluster.heal)
    result = cluster.call_and_run("put", {"key": "x", "value": 1},
                                  extra_time=0.2)
    assert result.ok


def test_double_crash_is_idempotent():
    cluster = ServiceCluster(ServiceSpec(), KVStore, n_servers=1,
                             default_link=FAST)
    cluster.crash(1)
    cluster.crash(1)
    cluster.recover(1)
    cluster.recover(1)
    cluster.settle(0.05)  # let the respawned receive loop start
    assert cluster.node(1).incarnation == 2


def _ignore_cancel(cluster, client):
    async def inner():
        from repro.errors import TaskCancelled
        try:
            await cluster.call(client, "put", {"key": "k", "value": 1})
        except TaskCancelled:
            raise
    return inner()
