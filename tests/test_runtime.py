"""The runtime abstraction layer: SimRuntime surface and CancelScope."""

import pytest

from repro.errors import NoCurrentTask, TaskCancelled
from repro.runtime import CancelScope, SimRuntime


def test_now_tracks_virtual_clock():
    rt = SimRuntime()
    assert rt.now() == 0.0
    rt.run_for(2.5)
    assert rt.now() == 2.5


def test_sleep_and_spawn_roundtrip():
    rt = SimRuntime()
    log = []

    async def child():
        await rt.sleep(1.0)
        log.append(rt.now())
        return "done"

    async def main():
        handle = rt.spawn(child(), name="child")
        assert await rt.join(handle) == "done"

    rt.run(main())
    assert log == [1.0]


def test_call_later_handle_cancellation():
    rt = SimRuntime()
    fired = []
    keep = rt.call_later(1.0, lambda: fired.append("keep"))
    drop = rt.call_later(1.0, lambda: fired.append("drop"))
    drop.cancel()
    rt.run_for(2.0)
    assert fired == ["keep"]


def test_current_handle_inside_and_sync_variant():
    rt = SimRuntime()
    seen = {}

    async def main():
        seen["async"] = await rt.current_handle()
        seen["sync"] = rt.current_handle_nowait()

    rt.run(main())
    assert seen["async"] is seen["sync"]
    with pytest.raises(NoCurrentTask):
        rt.current_handle_nowait()


def test_primitive_factories_are_independent_instances():
    rt = SimRuntime()
    assert rt.semaphore(2) is not rt.semaphore(2)
    assert rt.lock() is not rt.lock()
    assert rt.queue() is not rt.queue()
    assert rt.event() is not rt.event()


def test_cancel_scope_kills_live_tasks_only():
    rt = SimRuntime()
    scope = CancelScope(rt)
    log = []

    async def quick():
        log.append("quick")

    async def slow(tag):
        try:
            await rt.sleep(100)
            log.append(f"{tag}-finished")
        except TaskCancelled:
            log.append(f"{tag}-cancelled")
            raise

    async def main():
        scope.spawn(quick())
        scope.spawn(slow("a"))
        scope.spawn(slow("b"))
        await rt.sleep(1.0)
        cancelled = scope.cancel_all()
        assert cancelled == 2      # quick already finished
        await rt.sleep(1.0)

    rt.run(main())
    assert sorted(log) == ["a-cancelled", "b-cancelled", "quick"]


def test_cancel_scope_adopt_external_handle():
    rt = SimRuntime()
    scope = CancelScope(rt)

    async def forever():
        await rt.sleep(1000)

    async def main():
        handle = rt.spawn(forever())
        scope.adopt(handle)
        assert scope.cancel_all() == 1
        await rt.sleep(0)
        assert handle.done

    rt.run(main())


def test_cancel_all_empties_the_scope():
    rt = SimRuntime()
    scope = CancelScope(rt)

    async def forever():
        await rt.sleep(1000)

    async def main():
        scope.spawn(forever())
        assert scope.cancel_all() == 1
        assert scope.cancel_all() == 0   # second call: nothing tracked

    rt.run(main())


def test_run_until_idle_via_runtime():
    rt = SimRuntime()
    fired = []
    rt.call_later(3.0, lambda: fired.append(rt.now()))
    rt.run_until_idle()
    assert fired == [3.0]
