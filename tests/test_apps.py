"""Unit tests for the server applications and dispatcher."""

import pytest

from repro.apps import (
    BankApp,
    ComputeApp,
    CounterApp,
    KVStore,
    ServerApp,
    ServerDispatcher,
)
from repro.errors import RPCError, UnknownCallError
from repro.net import NetworkFabric, Node
from repro.runtime import SimRuntime


def make_node():
    # The node stays un-started: these tests call the apps directly and
    # need no network reception.
    rt = SimRuntime()
    fabric = NetworkFabric(rt)
    node = Node(1, rt, fabric)
    return rt, node


def test_dispatcher_invokes_app_and_logs():
    rt, node = make_node()
    app = KVStore()
    dispatcher = ServerDispatcher(node, app)

    async def main():
        result = await dispatcher.pop("put", {"key": "k", "value": 1,
                                              "tag": "t1"})
        assert result is None   # no previous value
        result = await dispatcher.pop("get", {"key": "k", "tag": "t1"})
        assert result == 1

    rt.run(main())
    assert [op for op, _ in dispatcher.execution_log] == ["put", "get"]
    assert dispatcher.executions("t1") == 2
    assert dispatcher.executions("missing") == 0


def test_unknown_operation_raises():
    rt, node = make_node()
    dispatcher = ServerDispatcher(node, KVStore())

    async def main():
        with pytest.raises(UnknownCallError):
            await dispatcher.pop("explode", {})

    rt.run(main())


def test_kvstore_operations():
    rt, node = make_node()
    app = KVStore()
    app.bind(node)

    async def main():
        assert await app.handle("put", {"key": "a", "value": 1}) is None
        assert await app.handle("put", {"key": "a", "value": 2}) == 1
        assert await app.handle("get", {"key": "a"}) == 2
        assert await app.handle("keys", {}) == ["a"]
        assert await app.handle("snapshot", {}) == {"a": 2}
        assert await app.handle("delete", {"key": "a"}) == 2
        assert await app.handle("get", {"key": "a"}) is None

    rt.run(main())
    assert [entry[0] for entry in app.apply_log] == ["put", "put",
                                                     "delete"]


def test_kvstore_checkpoint_roundtrip_and_crash():
    rt, node = make_node()
    app = KVStore()
    app.bind(node)

    async def main():
        await app.handle("put", {"key": "x", "value": 9})

    rt.run(main())
    state = app.get_state()
    app.on_crash()
    assert app.data == {} and app.apply_log == []
    app.set_state(state)
    assert app.data == {"x": 9}
    assert len(app.apply_log) == 1


def test_counter_state_and_crash():
    rt, node = make_node()
    app = CounterApp()
    app.bind(node)

    async def main():
        assert await app.handle("inc", {"amount": 3}) == 3
        assert await app.handle("inc", {}) == 4       # default amount 1
        assert await app.handle("read", {}) == 4

    rt.run(main())
    assert app.increments == 2
    state = app.get_state()
    app.on_crash()
    assert app.value == 0
    app.set_state(state)
    assert app.value == 4


def test_bank_operations_and_stable_state():
    rt, node = make_node()
    app = BankApp({"alice": 50}, transfer_delay=0.0)
    app.bind(node)

    async def main():
        assert await app.handle("balance", {"account": "alice"}) == 50
        assert await app.handle("deposit",
                                {"account": "alice", "amount": 25}) == 75
        await app.handle("transfer", {"src": "alice", "dst": "alice",
                                      "amount": 10})
        assert await app.handle("total", {}) == 75
        assert await app.handle("accounts", {}) == ["alice"]
        with pytest.raises(RPCError):
            await app.handle("balance", {"account": "nobody"})

    rt.run(main())
    # Balances live in stable storage, not app memory.
    assert node.stable.get("acct:alice") == 75


def test_bank_rebind_does_not_reset_existing_accounts():
    rt, node = make_node()
    app = BankApp({"alice": 50})
    app.bind(node)
    node.stable.put("acct:alice", 999)
    app2 = BankApp({"alice": 50})
    app2.bind(node)   # simulated reboot re-binding the app
    assert node.stable.get("acct:alice") == 999


def test_compute_app_partial_sum_partitions_correctly():
    rt, node = make_node()
    app = ComputeApp(1.5)
    app.bind(node)

    async def main():
        assert await app.handle("measure", {}) == 1.5
        assert await app.handle("whoami", {}) == 1
        # node pid 1, members [1, 2]: rank 0 takes even indices
        result = await app.handle(
            "partial_sum", {"values": [10, 20, 30, 40], "members": [1, 2]})
        assert result == 40.0   # 10 + 30

    rt.run(main())


def test_server_app_base_hooks_are_safe_defaults():
    app = ServerApp()
    assert app.get_state() is None
    app.set_state(None)
    app.on_crash()
