"""The property taxonomy module (Figures 1 and 2 as data)."""

from repro.core.properties import (
    CATEGORIES,
    FAILURE_SEMANTICS_MATRIX,
    PROPERTY_DEPENDENCIES,
    failure_semantics_name,
    figure1_rows,
    figure2_edges,
)


def test_categories_cover_the_papers_taxonomy():
    names = {c.name for c in CATEGORIES}
    assert names == {"failure", "call", "orphan handling",
                     "communication", "termination", "ordering",
                     "collation", "acceptance", "membership"}


def test_group_only_categories_match_section_2_2():
    group_only = {c.name for c in CATEGORIES if c.group_only}
    # "group RPC also includes the following": ordering, collation,
    # acceptance, membership.
    assert group_only == {"ordering", "collation", "acceptance",
                          "membership"}


def test_every_category_has_at_least_two_variants():
    for category in CATEGORIES:
        assert len(category.variants) >= 2, category.name
        assert category.description


def test_figure1_matrix_contents():
    assert FAILURE_SEMANTICS_MATRIX["at least once"] == \
        {"unique": False, "atomic": False}
    assert FAILURE_SEMANTICS_MATRIX["exactly once"] == \
        {"unique": True, "atomic": False}
    assert FAILURE_SEMANTICS_MATRIX["at most once"] == \
        {"unique": True, "atomic": True}


def test_failure_semantics_name_all_combinations():
    assert failure_semantics_name(False, False) == "at least once"
    assert failure_semantics_name(True, False) == "exactly once"
    assert failure_semantics_name(True, True) == "at most once"
    # The fourth combination has no traditional name.
    assert "unnamed" in failure_semantics_name(False, True)


def test_figure1_rows_shape():
    rows = figure1_rows()
    assert len(rows) == 3
    assert all(len(row) == 3 for row in rows)
    assert all(cell in ("YES", "NO") for _, u, a in rows
               for cell in (u, a))


def test_figure2_edges_include_the_papers_example():
    edges = figure2_edges()
    # "to implement FIFO or total ordering ... the reliability property
    # must hold" — the paper's worked example of a dependency edge.
    assert ("FIFO order", "reliable communication") in edges
    assert ("total order", "reliable communication") in edges
    # Returned list is a copy: mutating it cannot corrupt the registry.
    edges.append(("bogus", "edge"))
    assert ("bogus", "edge") not in figure2_edges()
    assert figure2_edges() == PROPERTY_DEPENDENCIES


def test_edge_endpoints_reference_known_variants():
    known_variants = {variant for c in CATEGORIES for variant in c.variants}
    known_variants |= {"all (acceptance)", "dynamic membership"}
    for dependent, prerequisite in figure2_edges():
        assert dependent in known_variants, dependent
        assert prerequisite in known_variants, prerequisite
