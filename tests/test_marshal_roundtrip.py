"""Seeded fuzz coverage for marshal/unmarshal round-trips.

The hot-path refactor rebuilt the marshaller three ways (size-only
counting pass, preallocated single-buffer encode, memoryview decode)
while promising a byte-identical wire format.  This module pins that
promise with a seeded random-value fuzzer: for every generated value
``v`` — nested containers, empty containers, unicode strings, large
payloads — it must hold that ``unmarshal(marshal(v)) == v`` and that
``marshalled_size(v) == len(marshal(v))``.

The generator is seeded, so a failure reproduces exactly; shrinking is
manual but the failing value prints in the assertion message.
"""

import random

import pytest

from repro.errors import MarshalError
from repro.stubs.marshal import marshal, marshalled_size, unmarshal

SEED = 0xC0FFEE
CASES = 400


def _gen_value(rng: random.Random, depth: int = 0):
    """One random plain-data value; containers shrink with depth."""
    scalar_only = depth >= 4
    kind = rng.randrange(8 if scalar_only else 11)
    if kind == 0:
        return None
    if kind == 1:
        return rng.choice([True, False])
    if kind == 2:
        # Ints spanning sign, zero, and widths past one machine word.
        return rng.choice([
            0, -1, 1, 255, -256, 2 ** 31 - 1, -2 ** 63,
            rng.randrange(-2 ** 100, 2 ** 100)])
    if kind == 3:
        return rng.choice([0.0, -0.0, 1.5, -2.25e10,
                           float(rng.randrange(-10 ** 6, 10 ** 6)) / 7])
    if kind == 4:
        return ""
    if kind == 5:
        # Unicode beyond ASCII: accents, CJK, emoji, combining marks.
        alphabet = "abcdé縦書きüñ🚀́☃"
        return "".join(rng.choice(alphabet)
                       for _ in range(rng.randrange(0, 40)))
    if kind == 6:
        return bytes(rng.randrange(256)
                     for _ in range(rng.randrange(0, 48)))
    if kind == 7:
        # Large-ish payloads: a blob or a long ASCII string.
        if rng.random() < 0.5:
            return "x" * rng.randrange(1000, 5000)
        return bytes(rng.randrange(256) for _ in range(2048))
    if kind == 8:
        return [_gen_value(rng, depth + 1)
                for _ in range(rng.randrange(0, 6))]
    if kind == 9:
        return tuple(_gen_value(rng, depth + 1)
                     for _ in range(rng.randrange(0, 6)))
    return {f"k{i}-{rng.randrange(100)}": _gen_value(rng, depth + 1)
            for i in range(rng.randrange(0, 6))}


def test_seeded_fuzz_roundtrip_and_size():
    rng = random.Random(SEED)
    for case in range(CASES):
        value = _gen_value(rng)
        encoded = marshal(value)
        decoded = unmarshal(encoded)
        assert decoded == value, (case, value)
        # Tuples survive as tuples, lists as lists (== conflates them
        # only across list/tuple at the top level when equal; type-check
        # the top level explicitly).
        assert type(decoded) is type(value) or isinstance(value, bool), \
            (case, value)
        assert marshalled_size(value) == len(encoded), (case, value)


def test_explicit_edge_values():
    for value in [
        None, True, False, 0, -1, 2 ** 200, -2 ** 200, 0.0, -1.5,
        "", "plain", "Ünïcode 縦書き 🚀", "́combining",
        b"", b"\x00\xff" * 100,
        [], (), {},
        [[], [[]], [[], [[]]]],
        {"nested": {"deeper": {"deepest": [1, (2, 3), {"x": None}]}}},
        {"": ""},                       # empty key and value
        ["x" * 10_000],                 # large payload in a container
        {"big": b"\xab" * 10_000},
    ]:
        encoded = marshal(value)
        assert unmarshal(encoded) == value
        assert marshalled_size(value) == len(encoded)


def test_sorted_dict_keys_keep_encoding_deterministic():
    a = marshal({"b": 1, "a": 2, "c": 3})
    b = marshal({"c": 3, "a": 2, "b": 1})
    assert a == b


def test_size_pass_rejects_what_encode_rejects():
    with pytest.raises(MarshalError):
        marshalled_size({1: "non-string key"})
    with pytest.raises(MarshalError):
        marshalled_size(object())
    with pytest.raises(MarshalError):
        marshal(object())
