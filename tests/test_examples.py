"""Every example script must run clean — examples are part of the API.

Each example is executed as a subprocess (its own interpreter, like a
user would run it) and checked for exit code 0 plus a marker line that
proves it got past its interesting part.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

#: script name -> a string its output must contain.
EXAMPLES = {
    "quickstart.py": "get with 2/3 replicas crashed -> OK",
    "replicated_kv_total_order.py": "IDENTICAL sequences",
    "fault_tolerant_reads.py": "acceptance=ALL",
    "orphan_handling.py": "orphans killed: 1",
    "atomic_bank.py": "money conserved: execution was ATOMIC",
    "asyncio_live.py": "server keys:",
    "causal_pipeline.py": "causal ordering",
    "stub_service.py": "RPCTimeout",
    "wan_replication.py": "acceptance=ALL (cross-DC)",
    "distributed_locks.py": "0/6 runs ended split-brained",
    "sharded_kvstore.py": "keyspace spanned over 3 shards on one fabric: OK",
}


@pytest.mark.parametrize("script", sorted(EXAMPLES), ids=str)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True, text=True, timeout=180)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert EXAMPLES[script] in completed.stdout, \
        completed.stdout[-2000:]


def test_every_example_file_is_covered():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(EXAMPLES), \
        "new example? add it (and its marker) to EXAMPLES"
