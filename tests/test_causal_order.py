"""Causal Order extension: happened-before gating across clients."""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore
from repro.errors import DependencyError

JITTERY = LinkSpec(delay=0.01, jitter=0.12)   # heavy reordering, no loss
#: Server 3's inbound links have huge delay variance, so a later call
#: can genuinely overtake an earlier one there while the client has long
#: since completed via the fast replicas.
ERRATIC = LinkSpec(delay=0.02, jitter=0.5)


def causal_spec():
    return ServiceSpec(ordering="causal", unique=True, bounded=0.0,
                       acceptance=1)


def make_cluster(spec, seed=0, n_clients=2):
    cluster = ServiceCluster(spec, KVStore, n_servers=3,
                             n_clients=n_clients, seed=seed,
                             default_link=JITTERY)
    cluster.fabric.set_links_to(3, ERRATIC)
    return cluster


def causal_micro(cluster, pid):
    return cluster.grpc(pid).micro("Causal_Order")


def cross_client_scenario(cluster):
    """A writes, hands its causal token to B, B writes."""
    a, b = cluster.client_pids

    async def scenario():
        async def a_writes():
            result = await cluster.call(a, "put",
                                        {"key": "cause", "value": 1})
            assert result.ok

        task = cluster.spawn_client(a, a_writes())
        await cluster.runtime.join(task)
        # The causal token travels out of band (e.g. inside a message
        # the application itself sent from A to B).  The control run
        # (no Causal Order configured) has no token to pass.
        if cluster.grpc(a).has_micro("Causal_Order"):
            causal_micro(cluster, b).join(causal_micro(cluster, a).token())

        async def b_writes():
            result = await cluster.call(b, "put",
                                        {"key": "effect", "value": 2})
            assert result.ok

        task = cluster.spawn_client(b, b_writes())
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)


def order_violations(cluster):
    violations = 0
    for pid in cluster.server_pids:
        keys = [k for _, k, _ in cluster.app(pid).apply_log]
        if "cause" in keys and "effect" in keys:
            if keys.index("effect") < keys.index("cause"):
                violations += 1
        elif "effect" in keys and "cause" not in keys:
            violations += 1
    return violations


def test_without_causal_order_effects_can_precede_causes():
    # Control: with acceptance=1, A stops waiting after the first reply,
    # so B's dependent write can overtake A's at the laggard replicas.
    total = 0
    for seed in range(8):
        spec = causal_spec().with_(ordering="none")
        cluster = make_cluster(spec, seed=seed)
        cross_client_scenario(cluster)
        total += order_violations(cluster)
    assert total > 0


def test_causal_order_never_applies_effect_before_cause():
    for seed in range(8):
        cluster = make_cluster(causal_spec(), seed=seed)
        cross_client_scenario(cluster)
        assert order_violations(cluster) == 0, f"seed={seed}"
        # Both writes eventually execute everywhere.
        for pid in cluster.server_pids:
            keys = [k for _, k, _ in cluster.app(pid).apply_log]
            assert keys == ["cause", "effect"], f"seed={seed} {keys}"


def test_own_calls_are_causally_chained():
    # A client's later calls depend on its earlier completed calls,
    # giving per-session ordering even with acceptance=1 and jitter.
    cluster = make_cluster(causal_spec(), seed=3, n_clients=1)
    client = cluster.client

    async def scenario():
        for i in range(5):
            task = cluster.spawn_client(
                client, _put(cluster, client, f"k{i}", i))
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=3.0)
    for pid in cluster.server_pids:
        keys = [k for _, k, _ in cluster.app(pid).apply_log]
        assert keys == [f"k{i}" for i in range(5)]


def test_parked_calls_drain():
    cluster = make_cluster(causal_spec(), seed=1)
    cross_client_scenario(cluster)
    for pid in cluster.server_pids:
        assert causal_micro(cluster, pid).parked == 0
        assert causal_micro(cluster, pid).executed_count == 2


def test_token_is_frozen_and_joinable():
    cluster = make_cluster(causal_spec(), seed=0)
    micro = causal_micro(cluster, cluster.client_pids[0])
    token = micro.token()
    assert token == frozenset()
    other = causal_micro(cluster, cluster.client_pids[1])
    other.join(frozenset({(1, 1, 7)}))
    assert (1, 1, 7) in other.token()


def test_causal_requires_reliable():
    with pytest.raises(DependencyError):
        ServiceSpec(ordering="causal", reliable=False).build()


def test_deps_survive_retransmission():
    from repro.faults import calls_to, drop_first

    spec = causal_spec().with_(acceptance=3)
    cluster = ServiceCluster(spec, KVStore, n_servers=3, n_clients=2,
                             seed=2,
                             default_link=LinkSpec(delay=0.01, jitter=0.0))
    a, b = cluster.client_pids
    # Server 3 misses B's first transmission; the retransmission must
    # still carry the dependency annotation.
    fault = drop_first(cluster.fabric, 1, calls_to(3))

    async def scenario():
        task = cluster.spawn_client(a, _put(cluster, a, "cause", 1))
        await cluster.runtime.join(task)
        fault.dropped = 0   # arm for B's call specifically
        causal_micro(cluster, b).join(causal_micro(cluster, a).token())
        task = cluster.spawn_client(b, _put(cluster, b, "effect", 2))
        await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=2.0)
    keys3 = [k for _, k, _ in cluster.app(3).apply_log]
    assert keys3 == ["cause", "effect"]


def _put(cluster, pid, key, value):
    async def inner():
        result = await cluster.call(pid, "put", {"key": key,
                                                 "value": value})
        assert result.ok
    return inner()
