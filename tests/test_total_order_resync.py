"""Total Order's agreement phase (extension): leader crash mid-traffic.

The paper omits the leader-change agreement "for brevity"; these tests
exercise the resync extension in exactly the scenario the simplified
protocol cannot handle — the leader dying with ORDER messages in flight.
"""

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec
from repro.apps import KVStore

LINK = LinkSpec(delay=0.01, jitter=0.03)


def rsm_spec(resync=True):
    return ServiceSpec(ordering="total", unique=True, bounded=0.0,
                       acceptance=3, total_resync=resync,
                       total_resync_grace=0.2)


def make_cluster(seed=0, resync=True, n_clients=3):
    return ServiceCluster(rsm_spec(resync), KVStore, n_servers=3,
                          n_clients=n_clients, seed=seed,
                          default_link=LINK, membership="oracle")


def crash_leader_mid_traffic(cluster, calls_per_client=4,
                             crash_after=0.05):
    async def client_loop(ci, pid):
        for i in range(calls_per_client):
            result = await cluster.call(pid, "put",
                                        {"key": f"c{ci}-{i}", "value": i})
            assert result.ok

    async def scenario():
        tasks = [cluster.spawn_client(pid, client_loop(ci, pid))
                 for ci, pid in enumerate(cluster.client_pids)]
        await cluster.runtime.sleep(crash_after)
        cluster.crash(3)   # the leader, with ORDERs in flight
        for task in tasks:
            await cluster.runtime.join(task)

    cluster.run_scenario(scenario(), extra_time=5.0)


def put_keys(app):
    return [key for kind, key, _ in app.apply_log if kind == "put"]


def test_leader_crash_mid_traffic_all_calls_complete():
    for seed in range(4):
        cluster = make_cluster(seed=seed)
        crash_leader_mid_traffic(cluster)
        total_calls = 3 * 4
        # Survivors applied every call, in identical order.
        logs = [tuple(put_keys(cluster.app(pid))) for pid in (1, 2)]
        assert len(logs[0]) == total_calls, f"seed={seed}"
        assert logs[0] == logs[1], f"seed={seed}"


def test_new_leader_ran_the_agreement_phase():
    cluster = make_cluster(seed=1)
    crash_leader_mid_traffic(cluster)
    new_leader = cluster.grpc(2).micro("Total_Order")
    follower = cluster.grpc(1).micro("Total_Order")
    assert new_leader.resyncs_led == 1
    assert follower.resyncs_led == 0
    assert not new_leader._resyncing


def test_resync_survives_query_loss():
    from repro.faults import drop_first
    from repro.core.messages import NetOp

    cluster = make_cluster(seed=2)
    # Lose the first ORDER_QUERY: the grace-timeout retry must cover it.
    drop_first(cluster.fabric, 1,
               lambda env: getattr(env.payload, "type", None)
               is NetOp.ORDER_QUERY)
    crash_leader_mid_traffic(cluster)
    logs = [tuple(put_keys(cluster.app(pid))) for pid in (1, 2)]
    assert len(logs[0]) == 12
    assert logs[0] == logs[1]


def test_rank_continuity_after_failover():
    # Every rank executed at the survivors must be contiguous: no gaps
    # (stuck sequence) and no duplicates (rank reuse).
    cluster = make_cluster(seed=3)
    crash_leader_mid_traffic(cluster)
    for pid in (1, 2):
        micro = cluster.grpc(pid).micro("Total_Order")
        ranks = sorted(micro.old_orders.values())
        assert ranks == sorted(set(ranks))          # no duplicate ranks
        assert micro.next_entry == len(put_keys(cluster.app(pid))) + 1


def partial_order_dissemination_scenario(resync, seed):
    """Force the unsafe case: the old leader's ORDER messages reach
    server 1 but never server 2 (the future leader), then the leader
    crashes with two calls ordered but unexecutable (acceptance=3
    requires the dead server until membership reports it)."""
    from repro.core.messages import NetOp
    from repro.faults import drop_matching

    cluster = ServiceCluster(rsm_spec(resync), KVStore, n_servers=3,
                             n_clients=2, seed=seed,
                             default_link=LINK, membership="oracle",
                             membership_delay=0.05)
    fault = drop_matching(
        cluster.fabric,
        lambda env: env.src == 3 and env.dst == 2
        and getattr(env.payload, "type", None) is NetOp.ORDER)

    async def scenario():
        tasks = []
        for i, pid in enumerate(cluster.client_pids):
            async def one(p=pid, k=f"call-{i}"):
                await cluster.call(p, "put", {"key": k, "value": 1})
            tasks.append(cluster.spawn_client(pid, one()))
        await cluster.runtime.sleep(0.3)   # orders assigned, 2 blind
        fault.remove()
        cluster.crash(3)
        deadline = cluster.runtime.now() + 20.0
        for task in tasks:
            while not task.done and cluster.runtime.now() < deadline:
                await cluster.runtime.sleep(0.25)

    cluster.run_scenario(scenario(), extra_time=3.0)
    return [tuple(put_keys(cluster.app(pid))) for pid in (1, 2)]


def test_without_resync_partial_dissemination_breaks_agreement():
    # Documented gap of the paper's simplified protocol: with the old
    # leader's assignments known only to server 1, the new leader can
    # reuse ranks — the survivors then diverge or stall.
    broken = 0
    for seed in range(6):
        logs = partial_order_dissemination_scenario(resync=False,
                                                    seed=seed)
        complete = all(len(log) == 2 for log in logs)
        if not complete or logs[0] != logs[1]:
            broken += 1
    assert broken > 0


def test_with_resync_partial_dissemination_is_repaired():
    # Same injected scenario, agreement phase on: the new leader learns
    # the stranded assignments from server 1 before assigning anything.
    for seed in range(6):
        logs = partial_order_dissemination_scenario(resync=True,
                                                    seed=seed)
        assert all(len(log) == 2 for log in logs), f"seed={seed}"
        assert logs[0] == logs[1], f"seed={seed}"
