"""The asyncio runtime: same protocol code, real event loop."""

import asyncio

import pytest

from repro import LinkSpec, ServiceCluster, ServiceSpec, Status
from repro.apps import CounterApp, KVStore
from repro.runtime import AsyncioRuntime

FAST = LinkSpec(delay=0.002, jitter=0.001)


def run(coro):
    return asyncio.run(coro)


def test_asyncio_semaphore_adapter():
    async def main():
        rt = AsyncioRuntime()
        sem = rt.semaphore(1)
        assert sem.value == 1
        await sem.acquire()
        assert sem.value == 0
        sem.release()
        assert sem.value == 1
        async with sem:
            assert sem.locked()

    run(main())


def test_asyncio_queue_adapter():
    async def main():
        rt = AsyncioRuntime()
        queue = rt.queue()
        queue.put("a")
        queue.put("b")
        assert len(queue) == 2
        assert await queue.get() == "a"
        assert queue.get_nowait() == "b"
        assert queue.empty()
        queue.put("c")
        queue.clear()
        assert queue.empty()

    run(main())


def test_asyncio_spawn_join_cancel():
    async def main():
        rt = AsyncioRuntime()

        async def work():
            await rt.sleep(0.01)
            return 42

        handle = rt.spawn(work(), name="worker")
        assert await rt.join(handle) == 42

        async def forever():
            await rt.sleep(100)

        handle = rt.spawn(forever(), daemon=True)
        await rt.sleep(0.01)
        rt.cancel(handle)
        with pytest.raises(asyncio.CancelledError):
            await rt.join(handle)

    run(main())


def test_end_to_end_call_on_asyncio():
    async def main():
        cluster = ServiceCluster(ServiceSpec(bounded=2.0), KVStore,
                                 n_servers=3, default_link=FAST,
                                 runtime=AsyncioRuntime())
        result = await cluster.call(cluster.client, "put",
                                    {"key": "k", "value": "v"})
        assert result.status is Status.OK
        result = await cluster.call(cluster.client, "get", {"key": "k"})
        assert result.args == "v"
        await asyncio.sleep(0.05)

    run(main())


def test_exactly_once_under_loss_on_asyncio():
    async def main():
        spec = ServiceSpec(bounded=5.0, unique=True, acceptance=3,
                           retrans_timeout=0.02)
        cluster = ServiceCluster(
            spec, CounterApp, n_servers=3,
            default_link=LinkSpec(delay=0.002, jitter=0.001, loss=0.2),
            runtime=AsyncioRuntime(), seed=3)
        for i in range(5):
            result = await cluster.call(cluster.client, "inc",
                                        {"amount": 1, "tag": i})
            assert result.status is Status.OK
        await asyncio.sleep(0.1)
        for pid in cluster.server_pids:
            assert cluster.app(pid).value == 5
            for tag in range(5):
                assert cluster.dispatcher(pid).executions(tag) == 1

    run(main())


def test_bounded_termination_real_time():
    async def main():
        import time
        cluster = ServiceCluster(ServiceSpec(bounded=0.2), KVStore,
                                 n_servers=1, default_link=FAST,
                                 runtime=AsyncioRuntime())
        cluster.crash(1)
        start = time.perf_counter()
        result = await cluster.call(cluster.client, "get", {"key": "k"})
        elapsed = time.perf_counter() - start
        assert result.status is Status.TIMEOUT
        assert 0.15 < elapsed < 1.0

    run(main())
