"""Unit tests for the x-kernel UPI shell and type demux."""

import pytest

from repro.errors import ReproError
from repro.runtime import SimRuntime
from repro.xkernel import Protocol, TypeDemux, compose_stack


class Recorder(Protocol):
    def __init__(self, name):
        super().__init__(name)
        self.pushed = []
        self.popped = []

    async def push(self, *args, **kwargs):
        self.pushed.append((args, kwargs))
        if self.lower is not None:
            return await self.lower.push(*args, **kwargs)

    async def pop(self, *args, **kwargs):
        self.popped.append((args, kwargs))
        if self.upper is not None:
            return await self.upper.pop(*args, **kwargs)


def run(coro):
    SimRuntime().run(coro)


def test_compose_stack_links_up_and_down():
    top, mid, bottom = Recorder("top"), Recorder("mid"), Recorder("bot")
    compose_stack(top, mid, bottom)
    assert top.lower is mid and mid.lower is bottom
    assert bottom.upper is mid and mid.upper is top

    async def main():
        await top.push("down")
        await bottom.pop("up")

    run(main())
    assert mid.pushed == [(("down",), {})]
    assert bottom.pushed == [(("down",), {})]
    assert mid.popped == [(("up",), {})]
    assert top.popped == [(("up",), {})]


def test_compose_stack_requires_protocols():
    with pytest.raises(ReproError):
        compose_stack()


def test_push_without_lower_raises():
    lonely = Protocol("lonely")

    async def main():
        with pytest.raises(ReproError):
            await lonely.push("x")
        with pytest.raises(ReproError):
            await lonely.pop("x")

    run(main())


def test_type_demux_routes_by_payload_type():
    class A:
        pass

    class B:
        pass

    demux = TypeDemux()
    upper_a, upper_b = Recorder("a"), Recorder("b")
    bottom = Recorder("bot")
    compose_stack(demux, bottom)
    demux.attach(A, upper_a)
    demux.attach(B, upper_b)

    async def main():
        await demux.pop(A(), sender=1)
        await demux.pop(B(), sender=2)
        await demux.pop("unclaimed", sender=3)   # dropped silently
        # pushes from either upper reach the shared bottom
        await upper_a.push("via-a")
        await upper_b.push("via-b")

    run(main())
    assert len(upper_a.popped) == 1
    assert len(upper_b.popped) == 1
    assert [args[0][0] for args in bottom.pushed] == ["via-a", "via-b"]


def test_type_demux_matches_subclasses():
    class Base:
        pass

    class Derived(Base):
        pass

    demux = TypeDemux()
    upper = Recorder("u")
    demux.attach(Base, upper)

    async def main():
        await demux.pop(Derived())

    run(main())
    assert len(upper.popped) == 1
